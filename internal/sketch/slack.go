package sketch

import (
	"fmt"
	"math"
	"sort"

	"distsketch/internal/graph"
)

// Slack sketch types from Section 4 of the paper.

// LandmarkLabel is the stretch-3 ε-slack sketch of Theorem 4.3: the node's
// distance to every member of an ε-density net N.
type LandmarkLabel struct {
	Owner int
	Dists map[int]graph.Dist // net node -> d(owner, net node)
}

// NewLandmarkLabel allocates an empty landmark label.
func NewLandmarkLabel(owner int) *LandmarkLabel {
	return &LandmarkLabel{Owner: owner, Dists: make(map[int]graph.Dist)}
}

// SizeWords counts two words (ID, distance) per net node.
func (l *LandmarkLabel) SizeWords() int { return 2 * len(l.Dists) }

// NetNodes returns the sorted net member IDs stored in the label.
func (l *LandmarkLabel) NetNodes() []int {
	ids := make([]int, 0, len(l.Dists))
	for w := range l.Dists {
		ids = append(ids, w)
	}
	sort.Ints(ids)
	return ids
}

// QueryLandmark estimates d(u,v) as min over net nodes w of
// d(u,w) + d(w,v) (Theorem 4.3). For pairs where v is ε-far from u the
// estimate is between d(u,v) and 3·d(u,v).
func QueryLandmark(a, b *LandmarkLabel) graph.Dist {
	if a.Owner == b.Owner {
		return 0
	}
	best := graph.Inf
	small, large := a, b
	if len(b.Dists) < len(a.Dists) {
		small, large = b, a
	}
	for w, dw := range small.Dists {
		if dv, ok := large.Dists[w]; ok {
			if est := graph.AddDist(dw, dv); est < best {
				best = est
			}
		}
	}
	return best
}

// CDGLabel is the (ε,k)-CDG sketch of Section 4 / Lemma 4.4: the identity
// of the nearest density-net node u', the distance d(u,u'), and the
// Thorup–Zwick label of u' with respect to a hierarchy sampled on the net.
type CDGLabel struct {
	Owner    int
	Eps      float64
	NetNode  int        // u' = nearest net node (tie -> smaller ID)
	NetDist  graph.Dist // d(u, u')
	NetLabel *TZLabel   // TZ label of u' over the net hierarchy
}

// SizeWords counts the net pointer (2 words) plus the carried TZ label.
func (l *CDGLabel) SizeWords() int {
	if l.NetLabel == nil {
		return 2
	}
	return 2 + l.NetLabel.SizeWords()
}

// QueryCDG estimates d(u,v) as d(u,u') + d”(u',v') + d(v',v), where d”
// is the TZ estimate between the two net nodes (Section 4). For pairs
// where v is ε-far from u the estimate is within a factor 8k-1.
func QueryCDG(a, b *CDGLabel) graph.Dist {
	if a.Owner == b.Owner {
		return 0
	}
	if a.NetNode == b.NetNode {
		// Same nearest net node: estimate through it directly.
		return graph.AddDist(a.NetDist, b.NetDist)
	}
	if a.NetLabel == nil || b.NetLabel == nil {
		// A label without its net node's TZ label (legal on the wire)
		// has no common reference to estimate through.
		return graph.Inf
	}
	mid := QueryTZ(a.NetLabel, b.NetLabel)
	return graph.AddDist(a.NetDist, graph.AddDist(mid, b.NetDist))
}

// GracefulLabel is the gracefully degrading sketch of Theorem 4.8: one
// (ε_i, k_i)-CDG sketch for every ε_i = 2^{-i}, i = 1..⌈log₂ n⌉. The
// query takes the minimum over the per-ε estimates, which yields stretch
// O(log 1/ε) simultaneously for every ε, hence O(log n) worst-case and
// O(1) average stretch (Lemma 4.7, Corollary 4.9).
type GracefulLabel struct {
	Owner  int
	Levels []*CDGLabel // Levels[i] built with ε = 2^{-(i+1)}
}

// GracefulLevels returns ⌈log₂ n⌉, the number of slack levels a gracefully
// degrading sketch uses for an n-node network.
func GracefulLevels(n int) int {
	if n <= 2 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// GracefulK returns k_i for slack level i (1-based): k_i = i, matching the
// paper's choice k = O(log 1/ε_i) with ε_i = 2^{-i}. The stretch at level
// i is then 8i-1 = O(log 1/ε_i).
func GracefulK(i int) int { return i }

// SizeWords sums the component sketch sizes.
func (l *GracefulLabel) SizeWords() int {
	s := 0
	for _, c := range l.Levels {
		s += c.SizeWords()
	}
	return s
}

// QueryGraceful returns the minimum estimate over all slack levels. All
// component estimates are ≥ d(u,v), so the minimum is too.
func QueryGraceful(a, b *GracefulLabel) graph.Dist {
	if a.Owner == b.Owner {
		return 0
	}
	best := graph.Inf
	n := len(a.Levels)
	if len(b.Levels) < n {
		n = len(b.Levels)
	}
	for i := 0; i < n; i++ {
		if a.Levels[i] == nil || b.Levels[i] == nil {
			continue
		}
		if est := QueryCDG(a.Levels[i], b.Levels[i]); est < best {
			best = est
		}
	}
	return best
}

// Validate checks structural invariants of a graceful label.
func (l *GracefulLabel) Validate() error {
	for i, c := range l.Levels {
		if c == nil {
			return fmt.Errorf("sketch: graceful level %d missing", i+1)
		}
		if c.Owner != l.Owner {
			return fmt.Errorf("sketch: graceful level %d owner %d != %d", i+1, c.Owner, l.Owner)
		}
		if c.NetLabel != nil {
			if err := c.NetLabel.Validate(); err != nil {
				return fmt.Errorf("sketch: graceful level %d: %w", i+1, err)
			}
		}
	}
	return nil
}
