package sketch

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"distsketch/internal/graph"
)

// Binary serialization for labels. In a deployment this is the payload a
// node ships when another node asks for its sketch (the §2.1 scenario:
// "it can directly contact the other node using its IP address and ask
// for its sketch"). The format is varint-based and self-delimiting.

// Wire-format tag bytes, the first byte of every encoded label.
const (
	TagTZ       byte = 1
	TagLandmark byte = 2
	TagCDG      byte = 3
	TagGraceful byte = 4
)

func putInt(buf *bytes.Buffer, v int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	buf.Write(tmp[:n])
}

func getInt(buf *bytes.Reader) (int64, error) {
	return binary.ReadVarint(buf)
}

// dist sentinel: graph.Inf encodes as -1 (varint-friendly).
func putDist(buf *bytes.Buffer, d graph.Dist) {
	if d == graph.Inf {
		putInt(buf, -1)
		return
	}
	putInt(buf, int64(d))
}

func getDist(buf *bytes.Reader) (graph.Dist, error) {
	v, err := getInt(buf)
	if err != nil {
		return 0, err
	}
	if v == -1 {
		return graph.Inf, nil
	}
	if v < 0 {
		return 0, fmt.Errorf("sketch: negative distance %d", v)
	}
	return graph.Dist(v), nil
}

// MarshalTZ encodes a TZ label. Bunch items are emitted in their stored
// (sorted, unique) order — the same ascending-ID order the old map-backed
// encoder produced via BunchNodes, so the wire bytes are unchanged across
// the sorted-slice refactor.
func MarshalTZ(l *TZLabel) []byte {
	var buf bytes.Buffer
	buf.WriteByte(TagTZ)
	putInt(&buf, int64(l.Owner))
	putInt(&buf, int64(l.K))
	for _, p := range l.Pivots {
		putInt(&buf, int64(p.Node))
		putDist(&buf, p.Dist)
	}
	putInt(&buf, int64(len(l.Bunch)))
	for _, it := range l.Bunch {
		putInt(&buf, int64(it.Node))
		putDist(&buf, it.Dist)
		putInt(&buf, int64(it.Level))
	}
	return buf.Bytes()
}

// UnmarshalTZ decodes a TZ label produced by MarshalTZ.
func UnmarshalTZ(data []byte) (*TZLabel, error) {
	r := bytes.NewReader(data)
	tag, err := r.ReadByte()
	if err != nil || tag != TagTZ {
		return nil, fmt.Errorf("sketch: bad TZ tag")
	}
	l, err := readTZ(r)
	if err != nil {
		return nil, err
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("sketch: %d trailing bytes", r.Len())
	}
	return l, nil
}

func readTZ(r *bytes.Reader) (*TZLabel, error) {
	owner, err := getInt(r)
	if err != nil {
		return nil, err
	}
	k, err := getInt(r)
	if err != nil {
		return nil, err
	}
	if k < 1 || k > math.MaxInt32 {
		return nil, fmt.Errorf("sketch: bad k %d", k)
	}
	// Each pivot occupies at least 2 bytes, so k beyond the remaining
	// input is malformed — reject it before allocating k pivot slots
	// (an attacker-controlled k must not drive a huge allocation).
	if k > int64(r.Len())/2+1 {
		return nil, fmt.Errorf("sketch: k %d exceeds input", k)
	}
	l := NewTZLabel(int(owner), int(k))
	for i := 0; i < int(k); i++ {
		node, err := getInt(r)
		if err != nil {
			return nil, err
		}
		d, err := getDist(r)
		if err != nil {
			return nil, err
		}
		l.Pivots[i] = Pivot{Node: int(node), Dist: d}
	}
	m, err := getInt(r)
	if err != nil {
		return nil, err
	}
	if m < 0 {
		return nil, fmt.Errorf("sketch: negative bunch size")
	}
	// Each bunch entry occupies at least 3 bytes.
	if m > int64(r.Len())/3+1 {
		return nil, fmt.Errorf("sketch: bunch size %d exceeds input", m)
	}
	// Our encoder always emits the bunch in ascending node-ID order, but
	// the input is untrusted wire bytes, so unsorted or duplicated node
	// IDs are canonicalized — sorted, duplicates collapsed to the
	// smallest distance — rather than trusted. (The former map
	// representation silently absorbed duplicates last-entry-wins, making
	// the decoded label depend on adversarial entry order.)
	l.Bunch = make([]BunchItem, 0, m)
	canonical := true
	for j := 0; j < int(m); j++ {
		w, err := getInt(r)
		if err != nil {
			return nil, err
		}
		d, err := getDist(r)
		if err != nil {
			return nil, err
		}
		lev, err := getInt(r)
		if err != nil {
			return nil, err
		}
		if n := len(l.Bunch); n > 0 && int(w) <= l.Bunch[n-1].Node {
			canonical = false
		}
		l.Bunch = append(l.Bunch, BunchItem{Node: int(w), Dist: d, Level: int(lev)})
	}
	if !canonical {
		l.Bunch = CanonicalizeBunch(l.Bunch)
	}
	// Decoded labels are immutable from here on (decode-once serving), so
	// the DistTo acceleration index is built eagerly — a lazy build would
	// race under concurrent queries.
	l.buildProbe()
	return l, nil
}

// MarshalLandmark encodes a landmark label. Entries are emitted in their
// stored (sorted, unique) order — the same ascending-ID order the old
// map-backed encoder produced via NetNodes, so the wire bytes are
// unchanged across the sorted-slice refactor.
func MarshalLandmark(l *LandmarkLabel) []byte {
	var buf bytes.Buffer
	buf.WriteByte(TagLandmark)
	putInt(&buf, int64(l.Owner))
	putInt(&buf, int64(len(l.Entries)))
	for _, e := range l.Entries {
		putInt(&buf, int64(e.Net))
		putDist(&buf, e.D)
	}
	return buf.Bytes()
}

// UnmarshalLandmark decodes a landmark label. Our encoder always emits
// entries in ascending net-ID order, but the input is untrusted wire
// bytes (Section 2.1: sketches arrive from arbitrary peers), so unsorted
// or duplicated net IDs are canonicalized — sorted, duplicates collapsed
// to the smallest distance — rather than trusted. The map representation
// silently absorbed duplicates with last-entry-wins, which made the
// decoded label depend on adversarial entry order; canonicalizing makes
// it deterministic and keeps QueryLandmark's merge-intersection sound.
func UnmarshalLandmark(data []byte) (*LandmarkLabel, error) {
	r := bytes.NewReader(data)
	tag, err := r.ReadByte()
	if err != nil || tag != TagLandmark {
		return nil, fmt.Errorf("sketch: bad landmark tag")
	}
	owner, err := getInt(r)
	if err != nil {
		return nil, err
	}
	m, err := getInt(r)
	if err != nil {
		return nil, err
	}
	// Each entry occupies at least 2 bytes.
	if m < 0 || m > int64(r.Len())/2+1 {
		return nil, fmt.Errorf("sketch: entry count %d exceeds input", m)
	}
	l := NewLandmarkLabel(int(owner))
	l.Entries = make([]Entry, 0, m)
	canonical := true
	for j := 0; j < int(m); j++ {
		w, err := getInt(r)
		if err != nil {
			return nil, err
		}
		d, err := getDist(r)
		if err != nil {
			return nil, err
		}
		if n := len(l.Entries); n > 0 && int(w) <= l.Entries[n-1].Net {
			canonical = false
		}
		l.Entries = append(l.Entries, Entry{Net: int(w), D: d})
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("sketch: %d trailing bytes", r.Len())
	}
	if !canonical {
		l.Entries = CanonicalizeEntries(l.Entries)
	}
	return l, nil
}

// MarshalCDG encodes a CDG label.
func MarshalCDG(l *CDGLabel) []byte {
	var buf bytes.Buffer
	buf.WriteByte(TagCDG)
	writeCDG(&buf, l)
	return buf.Bytes()
}

func writeCDG(buf *bytes.Buffer, l *CDGLabel) {
	putInt(buf, int64(l.Owner))
	putInt(buf, int64(math.Float64bits(l.Eps)))
	putInt(buf, int64(l.NetNode))
	putDist(buf, l.NetDist)
	if l.NetLabel == nil {
		putInt(buf, 0)
		return
	}
	putInt(buf, 1)
	buf.Write(MarshalTZ(l.NetLabel))
}

// UnmarshalCDG decodes a CDG label.
func UnmarshalCDG(data []byte) (*CDGLabel, error) {
	r := bytes.NewReader(data)
	tag, err := r.ReadByte()
	if err != nil || tag != TagCDG {
		return nil, fmt.Errorf("sketch: bad CDG tag")
	}
	l, err := readCDG(r)
	if err != nil {
		return nil, err
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("sketch: %d trailing bytes", r.Len())
	}
	return l, nil
}

func readCDG(r *bytes.Reader) (*CDGLabel, error) {
	owner, err := getInt(r)
	if err != nil {
		return nil, err
	}
	epsBits, err := getInt(r)
	if err != nil {
		return nil, err
	}
	netNode, err := getInt(r)
	if err != nil {
		return nil, err
	}
	netDist, err := getDist(r)
	if err != nil {
		return nil, err
	}
	hasLabel, err := getInt(r)
	if err != nil {
		return nil, err
	}
	l := &CDGLabel{
		Owner:   int(owner),
		Eps:     math.Float64frombits(uint64(epsBits)),
		NetNode: int(netNode),
		NetDist: netDist,
	}
	if hasLabel == 1 {
		tag, err := r.ReadByte()
		if err != nil || tag != TagTZ {
			return nil, fmt.Errorf("sketch: bad nested TZ tag")
		}
		l.NetLabel, err = readTZ(r)
		if err != nil {
			return nil, err
		}
	}
	return l, nil
}

// MarshalGraceful encodes a graceful label.
func MarshalGraceful(l *GracefulLabel) []byte {
	var buf bytes.Buffer
	buf.WriteByte(TagGraceful)
	putInt(&buf, int64(l.Owner))
	putInt(&buf, int64(len(l.Levels)))
	for _, c := range l.Levels {
		writeCDG(&buf, c)
	}
	return buf.Bytes()
}

// UnmarshalGraceful decodes a graceful label.
func UnmarshalGraceful(data []byte) (*GracefulLabel, error) {
	r := bytes.NewReader(data)
	tag, err := r.ReadByte()
	if err != nil || tag != TagGraceful {
		return nil, fmt.Errorf("sketch: bad graceful tag")
	}
	owner, err := getInt(r)
	if err != nil {
		return nil, err
	}
	m, err := getInt(r)
	if err != nil {
		return nil, err
	}
	// Each nested CDG label occupies at least 5 bytes.
	if m < 0 || m > int64(r.Len())/5+1 {
		return nil, fmt.Errorf("sketch: level count %d exceeds input", m)
	}
	l := &GracefulLabel{Owner: int(owner)}
	for j := 0; j < int(m); j++ {
		c, err := readCDG(r)
		if err != nil {
			return nil, err
		}
		l.Levels = append(l.Levels, c)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("sketch: %d trailing bytes", r.Len())
	}
	l.compact()
	return l, nil
}

// compact repacks the per-level net labels' bunches, pivots and probe
// tables into three contiguous arenas. A graceful query walks all
// ⌈log n⌉ levels of both labels, so the flat layout keeps one decoded
// label on a handful of cache lines and pages instead of 3·⌈log n⌉
// scattered allocations — decode-once serving reads the arenas millions
// of times. Contents are unchanged; only the backing storage moves.
func (l *GracefulLabel) compact() {
	items, pivots, slots, nets := 0, 0, 0, 0
	for _, c := range l.Levels {
		if c.NetLabel != nil {
			items += len(c.NetLabel.Bunch)
			pivots += len(c.NetLabel.Pivots)
			slots += len(c.NetLabel.probe)
			nets++
		}
	}
	levelArena := make([]CDGLabel, len(l.Levels))
	netArena := make([]TZLabel, 0, nets)
	itemArena := make([]BunchItem, 0, items)
	pivotArena := make([]Pivot, 0, pivots)
	slotArena := make([]probeSlot, 0, slots)
	for i, c := range l.Levels {
		levelArena[i] = *c
		l.Levels[i] = &levelArena[i]
		if c.NetLabel == nil {
			continue
		}
		netArena = append(netArena, *c.NetLabel)
		nl := &netArena[len(netArena)-1]
		levelArena[i].NetLabel = nl
		is := len(itemArena)
		itemArena = append(itemArena, nl.Bunch...)
		//sketchlint:ignore canonlabel arena repack copies an already-canonical bunch verbatim
		nl.Bunch = itemArena[is:len(itemArena):len(itemArena)]
		ps := len(pivotArena)
		pivotArena = append(pivotArena, nl.Pivots...)
		nl.Pivots = pivotArena[ps:len(pivotArena):len(pivotArena)]
		if t := nl.probe; t != nil {
			ss := len(slotArena)
			slotArena = append(slotArena, t...)
			nl.probe = slotArena[ss:len(slotArena):len(slotArena)]
		}
	}
}
