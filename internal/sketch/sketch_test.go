package sketch

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"distsketch/internal/graph"
)

func TestNodeRNGIndependentStreams(t *testing.T) {
	a := NodeRNG(1, SaltLevels, 5).Float64()
	b := NodeRNG(1, SaltNet, 5).Float64()
	c := NodeRNG(1, SaltLevels, 5).Float64()
	if a != c {
		t.Error("same (seed,salt,id) must reproduce")
	}
	if a == b {
		t.Error("different salts should give different streams")
	}
	d := NodeRNG(2, SaltLevels, 5).Float64()
	if a == d {
		t.Error("different seeds should give different streams")
	}
}

func TestTopLevelBounds(t *testing.T) {
	for k := 1; k <= 6; k++ {
		for id := 0; id < 50; id++ {
			l := TopLevel(3, id, k, 0.5)
			if l < 0 || l > k-1 {
				t.Fatalf("k=%d id=%d: level %d out of range", k, id, l)
			}
		}
	}
	// p=0: never promoted. p=1: always to the top.
	for id := 0; id < 10; id++ {
		if l := TopLevel(3, id, 4, 0); l != 0 {
			t.Errorf("p=0 gave level %d", l)
		}
		if l := TopLevel(3, id, 4, 1); l != 3 {
			t.Errorf("p=1 gave level %d", l)
		}
	}
}

func TestSampleLevelsDistribution(t *testing.T) {
	n, k := 4096, 4
	p := HierarchyProb(n, k) // 4096^{-1/4} = 1/8
	if math.Abs(p-0.125) > 1e-12 {
		t.Fatalf("HierarchyProb = %g, want 0.125", p)
	}
	levels := SampleLevels(n, k, p, 7)
	counts := make([]int, k)
	for _, l := range levels {
		counts[l]++
	}
	// E[level >= 1] = n*p = 512; allow generous slack.
	atLeast1 := n - counts[0]
	if atLeast1 < 512/2 || atLeast1 > 512*2 {
		t.Errorf("|A_1| = %d, expected about 512", atLeast1)
	}
}

func TestHierarchyProbK1(t *testing.T) {
	if HierarchyProb(100, 1) != 0 {
		t.Error("k=1 must never promote")
	}
}

func TestNetProb(t *testing.T) {
	n := 100
	if p := NetProb(n, 1e-9); p != 1 {
		t.Errorf("tiny eps must give p=1, got %g", p)
	}
	p := NetProb(n, 0.25)
	want := 5 * math.Log(100.0) / (0.25 * 100)
	if math.Abs(p-want) > 1e-12 {
		t.Errorf("NetProb = %g, want %g", p, want)
	}
}

func TestNetHierarchyProb(t *testing.T) {
	if NetHierarchyProb(100, 0.25, 1) != 0 {
		t.Error("k=1 must never promote")
	}
	p := NetHierarchyProb(100, 0.25, 2)
	want := math.Pow(10/0.25*math.Log(100), -0.5)
	if math.Abs(p-want) > 1e-12 {
		t.Errorf("NetHierarchyProb = %g, want %g", p, want)
	}
}

func TestDensityNetDeterministic(t *testing.T) {
	a := DensityNet(200, 0.25, 9, SaltNet)
	b := DensityNet(200, 0.25, 9, SaltNet)
	if len(a) != len(b) {
		t.Fatal("net not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("net not deterministic")
		}
	}
	if len(a) == 0 {
		t.Error("net unexpectedly empty")
	}
}

// buildTestLabels constructs labels for a 4-node path 0-1-2-3 (unit
// weights) with k=2, A_1={2}: bunches computed by hand.
//
//	d(·,A_1): [2,1,0,1]
//	B_0(0) = {1} (d=1<2); B_0(1) = {0}? d(1,0)=1 >= d(1,A_1)=1 → no; B_0(1)=∅
//	B_0(2) = ∅ (d(2,A_1)=0); B_0(3) = ∅ (d(3,2)... level-0 nodes: 0,1,3.
//	  d(3,1)=2 >= 1 no; so B_0(3)=∅.
//	B_1(u) = {2} for all u (A_2=∅ so threshold ∞).
func buildTestLabels(t *testing.T) []*TZLabel {
	t.Helper()
	labels := make([]*TZLabel, 4)
	dA1 := []graph.Dist{2, 1, 0, 1}
	d2 := []graph.Dist{2, 1, 0, 1}
	for u := 0; u < 4; u++ {
		l := NewTZLabel(u, 2)
		l.Pivots[0] = Pivot{Node: u, Dist: 0}
		l.Pivots[1] = Pivot{Node: 2, Dist: dA1[u]}
		if u != 2 {
			l.Set(2, d2[u], 1)
		}
		labels[u] = l
	}
	labels[0].Set(1, 1, 0)
	return labels
}

func TestQueryTZHandComputed(t *testing.T) {
	labels := buildTestLabels(t)
	for _, l := range labels {
		if err := l.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		u, v int
		want graph.Dist
	}{
		{0, 0, 0},
		{0, 1, 1}, // p_0(1)=1 ∈ B(0) → 0 + 1
		{1, 0, 1}, // symmetric
		{0, 3, 3}, // via pivot 2: d(0,2)+d(2,3) = 2+1
		{1, 3, 2}, // via 2: 1+1
		{2, 3, 1}, // p_0(2)=2 ∈ B(3) → 0+1
		{0, 2, 2},
	}
	for _, c := range cases {
		if got := QueryTZ(labels[c.u], labels[c.v]); got != c.want {
			t.Errorf("QueryTZ(%d,%d) = %d, want %d", c.u, c.v, got, c.want)
		}
	}
}

// TestQueryTZNonMonotonePivots pins QueryTZ's behavior on wire-legal
// adversarial labels whose pivot distances are NOT monotone (the
// decoder does not enforce the construction invariant): an Inf-distance
// level must not cut the walk short of a later finite hit — the
// bounded walk's early exit is reserved for finite bounds, where the
// caller discards anything at or above the bound regardless.
func TestQueryTZNonMonotonePivots(t *testing.T) {
	mk := func(owner int) *TZLabel {
		l := NewTZLabel(owner, 2)
		l.Pivots[0] = Pivot{Node: -1, Dist: graph.Inf} // empty level 0
		l.Pivots[1] = Pivot{Node: 5, Dist: 3}
		l.Set(5, 3, 1)
		return l
	}
	// Round-trip through the wire format: these bytes are accepted input.
	a, err := UnmarshalTZ(MarshalTZ(mk(0)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := UnmarshalTZ(MarshalTZ(mk(1)))
	if err != nil {
		t.Fatal(err)
	}
	if d := QueryTZ(a, b); d != 6 {
		t.Errorf("QueryTZ = %d, want 6 (level-1 hit through node 5)", d)
	}
}

func TestQueryTZBestNotWorse(t *testing.T) {
	labels := buildTestLabels(t)
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			a, b := QueryTZ(labels[u], labels[v]), QueryTZBest(labels[u], labels[v])
			if b > a {
				t.Errorf("(%d,%d): best %d > first %d", u, v, b, a)
			}
		}
	}
}

func TestQueryTZSymmetric(t *testing.T) {
	labels := buildTestLabels(t)
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			if QueryTZ(labels[u], labels[v]) != QueryTZ(labels[v], labels[u]) {
				t.Errorf("asymmetric query (%d,%d)", u, v)
			}
		}
	}
}

func TestLabelValidateCatchesCorruption(t *testing.T) {
	labels := buildTestLabels(t)
	l := labels[0]
	l.Set(2, 5, 9)
	if err := l.Validate(); err == nil {
		t.Error("bad level not caught")
	}
	l.Set(2, graph.Inf, 1)
	if err := l.Validate(); err == nil {
		t.Error("Inf bunch distance not caught")
	}
	l.Bunch = l.Bunch[:1] // drop node 2, keep node 1
	l.Set(1, 3, 0)        // 3 >= d(0,A_1)=2
	if err := l.Validate(); err == nil {
		t.Error("bunch threshold violation not caught")
	}
	l.Bunch = []BunchItem{{Node: 5, Dist: 1, Level: 1}, {Node: 3, Dist: 1, Level: 1}}
	if err := l.Validate(); err == nil {
		t.Error("unsorted bunch not caught")
	}
	l.Bunch = []BunchItem{{Node: 3, Dist: 1, Level: 1}, {Node: 3, Dist: 1, Level: 1}}
	if err := l.Validate(); err == nil {
		t.Error("duplicate bunch node not caught")
	}
}

func TestSizeWords(t *testing.T) {
	labels := buildTestLabels(t)
	// Node 0: 2 pivots (4 words) + 2 bunch entries (6 words).
	if s := labels[0].SizeWords(); s != 10 {
		t.Errorf("size = %d, want 10", s)
	}
	lm := NewLandmarkLabel(0)
	lm.Set(3, 5)
	lm.Set(7, 9)
	if s := lm.SizeWords(); s != 4 {
		t.Errorf("landmark size = %d, want 4", s)
	}
}

func TestQueryLandmark(t *testing.T) {
	a := NewLandmarkLabel(0)
	b := NewLandmarkLabel(1)
	a.Set(10, 3)
	a.Set(11, 1)
	b.Set(10, 2)
	b.Set(11, 7)
	if got := QueryLandmark(a, b); got != 5 {
		t.Errorf("QueryLandmark = %d, want 5 (via node 10)", got)
	}
	if got := QueryLandmark(a, a); got != 0 {
		t.Errorf("self query = %d", got)
	}
	c := NewLandmarkLabel(2) // no shared landmarks
	c.Set(99, 1)
	if got := QueryLandmark(a, c); got != graph.Inf {
		t.Errorf("no common landmark should give Inf, got %d", got)
	}
}

// queryLandmarkMap is the seed's map-probe intersection, kept as the
// reference the merge-intersection must match observationally.
func queryLandmarkMap(a, b *LandmarkLabel) graph.Dist {
	if a.Owner == b.Owner {
		return 0
	}
	am := make(map[int]graph.Dist, a.Len())
	for _, e := range a.Entries {
		am[e.Net] = e.D
	}
	best := graph.Inf
	for _, e := range b.Entries {
		if da, ok := am[e.Net]; ok {
			if est := graph.AddDist(da, e.D); est < best {
				best = est
			}
		}
	}
	return best
}

// TestQueryLandmarkMatchesMapReference drives the two-pointer merge
// against the seed's map-based query on randomized label pairs with
// partial overlap, including Inf entries and empty labels.
func TestQueryLandmarkMatchesMapReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	for trial := 0; trial < 200; trial++ {
		mk := func(owner int) *LandmarkLabel {
			l := NewLandmarkLabel(owner)
			n := int(rng.Uint64() % 20)
			for i := 0; i < n; i++ {
				w := int(rng.Uint64() % 30)
				d := graph.Dist(rng.Uint64() % 100)
				if rng.Uint64()%10 == 0 {
					d = graph.Inf
				}
				l.Set(w, d)
			}
			return l
		}
		a, b := mk(1), mk(2)
		if got, want := QueryLandmark(a, b), queryLandmarkMap(a, b); got != want {
			t.Fatalf("trial %d: merge %d != map %d (a=%+v b=%+v)", trial, got, want, a.Entries, b.Entries)
		}
	}
}

// TestLandmarkSetGet covers the sorted-insert paths: ascending append,
// out-of-order insert, and overwrite.
func TestLandmarkSetGet(t *testing.T) {
	l := NewLandmarkLabel(0)
	l.Set(5, 50)
	l.Set(9, 90) // append fast path
	l.Set(1, 10) // insert at front
	l.Set(7, 70) // insert in middle
	l.Set(5, 55) // overwrite
	want := []Entry{{1, 10}, {5, 55}, {7, 70}, {9, 90}}
	if len(l.Entries) != len(want) {
		t.Fatalf("entries = %+v, want %+v", l.Entries, want)
	}
	for i := range want {
		if l.Entries[i] != want[i] {
			t.Fatalf("entries = %+v, want %+v", l.Entries, want)
		}
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if d, ok := l.Get(7); !ok || d != 70 {
		t.Errorf("Get(7) = %d,%v", d, ok)
	}
	if _, ok := l.Get(2); ok {
		t.Error("Get(2) found a missing entry")
	}
	if ids := l.NetNodes(); len(ids) != 4 || ids[0] != 1 || ids[3] != 9 {
		t.Errorf("NetNodes = %v", ids)
	}
}

func TestLandmarkValidate(t *testing.T) {
	l := &LandmarkLabel{Owner: 0, Entries: []Entry{{3, 1}, {3, 2}}}
	if err := l.Validate(); err == nil {
		t.Error("duplicate net id not caught")
	}
	l.Entries = []Entry{{5, 1}, {3, 2}}
	if err := l.Validate(); err == nil {
		t.Error("unsorted entries not caught")
	}
	l.Entries = []Entry{{3, -4}}
	if err := l.Validate(); err == nil {
		t.Error("negative distance not caught")
	}
}

func TestQueryCDGSameNet(t *testing.T) {
	a := &CDGLabel{Owner: 0, NetNode: 5, NetDist: 3}
	b := &CDGLabel{Owner: 1, NetNode: 5, NetDist: 4}
	if got := QueryCDG(a, b); got != 7 {
		t.Errorf("same-net query = %d, want 7", got)
	}
}

func TestQueryGracefulTakesMin(t *testing.T) {
	mk := func(owner int, dists ...graph.Dist) *GracefulLabel {
		g := &GracefulLabel{Owner: owner}
		for i, d := range dists {
			g.Levels = append(g.Levels, &CDGLabel{Owner: owner, NetNode: 100 + i, NetDist: d})
		}
		return g
	}
	a := mk(0, 10, 3, 8)
	b := mk(1, 5, 4, 1)
	// Per-level estimates: 15, 7, 9 → min 7.
	if got := QueryGraceful(a, b); got != 7 {
		t.Errorf("graceful = %d, want 7", got)
	}
	if got := QueryGraceful(a, a); got != 0 {
		t.Errorf("self = %d", got)
	}
}

func TestGracefulLevels(t *testing.T) {
	cases := map[int]int{2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1000: 10}
	for n, want := range cases {
		if got := GracefulLevels(n); got != want {
			t.Errorf("GracefulLevels(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestMarshalTZRoundTrip(t *testing.T) {
	for _, l := range buildTestLabels(t) {
		data := MarshalTZ(l)
		got, err := UnmarshalTZ(data)
		if err != nil {
			t.Fatal(err)
		}
		if got.Owner != l.Owner || got.K != l.K {
			t.Fatalf("header mismatch: %+v vs %+v", got, l)
		}
		for i := range l.Pivots {
			if got.Pivots[i] != l.Pivots[i] {
				t.Fatalf("pivot %d mismatch", i)
			}
		}
		if len(got.Bunch) != len(l.Bunch) {
			t.Fatalf("bunch size mismatch")
		}
		for i, it := range l.Bunch {
			if got.Bunch[i] != it {
				t.Fatalf("bunch[%d] mismatch", i)
			}
		}
	}
}

func TestMarshalRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalTZ([]byte{}); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := UnmarshalTZ([]byte{99, 1, 2, 3}); err == nil {
		t.Error("bad tag accepted")
	}
	good := MarshalTZ(buildTestLabels(t)[0])
	if _, err := UnmarshalTZ(good[:len(good)-1]); err == nil {
		t.Error("truncated input accepted")
	}
	if _, err := UnmarshalTZ(append(good, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestMarshalLandmarkRoundTrip(t *testing.T) {
	l := NewLandmarkLabel(42)
	l.Set(3, 17)
	l.Set(900, 2)
	blob := MarshalLandmark(l)
	got, err := UnmarshalLandmark(blob)
	if err != nil {
		t.Fatal(err)
	}
	d3, ok3 := got.Get(3)
	d900, ok900 := got.Get(900)
	if got.Owner != 42 || got.Len() != 2 || !ok3 || d3 != 17 || !ok900 || d900 != 2 {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if !bytes.Equal(MarshalLandmark(got), blob) {
		t.Error("re-marshal not byte-identical")
	}
}

// TestMarshalLandmarkGoldenBytes pins the landmark wire format to the
// seed encoder's exact output (tag, varint owner, varint count, then
// ascending (id, dist) varint pairs), so the sorted-slice representation
// provably did not change the bytes on the wire — existing persisted
// envelopes keep decoding, and the envelope version did not need a bump.
func TestMarshalLandmarkGoldenBytes(t *testing.T) {
	l := NewLandmarkLabel(42)
	l.Set(3, 17)
	l.Set(900, 2)
	l.Set(5, graph.Inf)
	want := []byte{
		TagLandmark,
		84,    // varint 42
		6,     // entry count 3
		6, 34, // id 3, dist 17
		10, 1, // id 5, dist Inf (varint -1)
		136, 14, 4, // id 900 (two-byte varint), dist 2
	}
	if got := MarshalLandmark(l); !bytes.Equal(got, want) {
		t.Errorf("wire bytes %v, want %v", got, want)
	}
}

// TestUnmarshalLandmarkCanonicalizes feeds the decoder wire bytes with
// out-of-order and duplicated net ids — legal varint streams our encoder
// never emits — and checks it canonicalizes (sorted, unique, smallest
// duplicate distance wins) rather than producing a label whose merge
// queries would silently miss intersections.
func TestUnmarshalLandmarkCanonicalizes(t *testing.T) {
	// Hand-assembled: owner 1, three entries (9,4), (3,6), (9,2).
	raw := []byte{
		TagLandmark,
		2,     // owner 1
		6,     // count 3
		18, 8, // id 9, dist 4
		6, 12, // id 3, dist 6
		18, 4, // id 9, dist 2
	}
	got, err := UnmarshalLandmark(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("decoded label not canonical: %v", err)
	}
	want := []Entry{{3, 6}, {9, 2}}
	if got.Len() != len(want) || got.Entries[0] != want[0] || got.Entries[1] != want[1] {
		t.Fatalf("entries = %+v, want %+v", got.Entries, want)
	}
	// The canonicalized label intersects correctly where the raw entry
	// order would have confused a naive merge.
	other := NewLandmarkLabel(2)
	other.Set(9, 1)
	if d := QueryLandmark(got, other); d != 3 {
		t.Errorf("query after canonicalization = %d, want 3", d)
	}
}

func TestMarshalCDGRoundTrip(t *testing.T) {
	inner := buildTestLabels(t)[1]
	l := &CDGLabel{Owner: 7, Eps: 0.125, NetNode: 2, NetDist: 11, NetLabel: inner}
	got, err := UnmarshalCDG(MarshalCDG(l))
	if err != nil {
		t.Fatal(err)
	}
	if got.Owner != 7 || got.Eps != 0.125 || got.NetNode != 2 || got.NetDist != 11 {
		t.Errorf("header mismatch: %+v", got)
	}
	if got.NetLabel == nil || got.NetLabel.Owner != inner.Owner {
		t.Error("nested label mismatch")
	}
	// Nil nested label also round-trips.
	l2 := &CDGLabel{Owner: 1, Eps: 0.5, NetNode: 3, NetDist: graph.Inf}
	got2, err := UnmarshalCDG(MarshalCDG(l2))
	if err != nil {
		t.Fatal(err)
	}
	if got2.NetLabel != nil || got2.NetDist != graph.Inf {
		t.Errorf("nil-label round trip mismatch: %+v", got2)
	}
}

func TestMarshalGracefulRoundTrip(t *testing.T) {
	l := &GracefulLabel{Owner: 3}
	l.Levels = append(l.Levels,
		&CDGLabel{Owner: 3, Eps: 0.5, NetNode: 1, NetDist: 2, NetLabel: buildTestLabels(t)[0]},
		&CDGLabel{Owner: 3, Eps: 0.25, NetNode: 2, NetDist: 0},
	)
	got, err := UnmarshalGraceful(MarshalGraceful(l))
	if err != nil {
		t.Fatal(err)
	}
	if got.Owner != 3 || len(got.Levels) != 2 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Levels[0].NetLabel == nil || got.Levels[1].NetLabel != nil {
		t.Error("nested labels mismatched")
	}
	if err := got.Validate(); err != nil {
		t.Error(err)
	}
}

// Property: serialization round-trips arbitrary well-formed labels.
func TestMarshalTZProperty(t *testing.T) {
	f := func(owner uint8, k uint8, entries []uint16) bool {
		kk := int(k%5) + 1
		l := NewTZLabel(int(owner), kk)
		for i := 0; i < kk; i++ {
			l.Pivots[i] = Pivot{Node: int(owner) + i, Dist: graph.Dist(i * 10)}
		}
		for i, e := range entries {
			if i >= 20 {
				break
			}
			l.Set(int(e), graph.Dist(e), i%kk)
		}
		got, err := UnmarshalTZ(MarshalTZ(l))
		if err != nil {
			return false
		}
		if got.Owner != l.Owner || len(got.Bunch) != len(l.Bunch) {
			return false
		}
		for i, it := range l.Bunch {
			if got.Bunch[i] != it {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSetBunchCanonicalizes(t *testing.T) {
	l := NewTZLabel(7, 2)
	l.Set(3, 30, 0)
	l.buildProbe()
	if d, ok := l.DistTo(3); !ok || d != 30 {
		t.Fatalf("DistTo(3) before SetBunch = (%d,%v), want (30,true)", d, ok)
	}
	// Unsorted input with a duplicate key: SetBunch must sort, collapse
	// the duplicate to the smaller distance, and drop the probe index
	// built over the previous bunch.
	l.SetBunch([]BunchItem{
		{Node: 9, Dist: 90, Level: 1},
		{Node: 2, Dist: 25, Level: 0},
		{Node: 9, Dist: 80, Level: 1},
	})
	if err := l.Validate(); err != nil {
		t.Fatalf("Validate after SetBunch: %v", err)
	}
	want := []BunchItem{{Node: 2, Dist: 25, Level: 0}, {Node: 9, Dist: 80, Level: 1}}
	if len(l.Bunch) != len(want) {
		t.Fatalf("Bunch = %+v, want %+v", l.Bunch, want)
	}
	for i := range want {
		if l.Bunch[i] != want[i] {
			t.Fatalf("Bunch[%d] = %+v, want %+v", i, l.Bunch[i], want[i])
		}
	}
	if _, ok := l.DistTo(3); ok {
		t.Error("DistTo(3) still answers after SetBunch replaced the bunch")
	}
	if d, ok := l.DistTo(9); !ok || d != 80 {
		t.Errorf("DistTo(9) after SetBunch = (%d,%v), want (80,true)", d, ok)
	}
}
