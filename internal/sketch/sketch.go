// Package sketch defines the distance-sketch (label) data types shared by
// the centralized reference constructions (internal/tz) and the distributed
// CONGEST constructions (internal/core), together with the query
// algorithms that turn two labels into a distance estimate.
//
// Terminology follows the paper:
//
//   - A hierarchy A_0 ⊇ A_1 ⊇ ... ⊇ A_{k-1}, A_k = ∅ is sampled by
//     independent per-node coins (each node of A_{i-1} survives to A_i
//     with probability p).
//   - topLevel(u) is the largest i with u ∈ A_i.
//   - p_i(u) is the node of A_i nearest to u (the "pivot"), with ties
//     broken toward the smaller node ID.
//   - B_i(u) = {w ∈ A_i : d(u,w) < d(u, A_{i+1})} and the bunch
//     B(u) = ∪_i B_i(u). Because w ∈ A_{i+1} has d(u,w) ≥ d(u,A_{i+1}),
//     each bunch member w belongs exactly to B_{topLevel(w)}(u); the
//     union is disjoint.
//
// The label L(u) stores the pivots (with distances) and the bunch (with
// distances and top levels), which is exactly the information the paper's
// query procedure (Lemma 3.2) needs.
package sketch

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"distsketch/internal/graph"
)

// Salts separate the independent coin streams used by the different
// constructions so that, e.g., hierarchy levels and density-net membership
// are independent even under a shared master seed.
const (
	SaltLevels uint64 = 0xA11CE // Thorup–Zwick hierarchy coins (§3.1)
	SaltNet    uint64 = 0xBEE5  // ε-density net membership coins (Lemma 4.2)
	SaltNetTZ  uint64 = 0xCAB1E // hierarchy coins on the net (Lemma 4.5)
)

// NodeRNG returns the private random stream of a node for one construction
// (identified by salt). Both the distributed nodes and the centralized
// reference samplers derive coins from this same function, which is what
// makes the distributed-vs-centralized equivalence check (E12) exact.
func NodeRNG(seed, salt uint64, id int) *rand.Rand {
	return rand.New(rand.NewPCG(seed^salt, uint64(id)*0x9e3779b97f4a7c15+salt+1))
}

// TopLevelFromRNG draws a node's top level: the node is in A_0 always and
// survives from A_i to A_{i+1} with probability p, for at most k-1
// promotions (A_k = ∅ by definition).
func TopLevelFromRNG(r *rand.Rand, k int, p float64) int {
	level := 0
	for level < k-1 && r.Float64() < p {
		level++
	}
	return level
}

// TopLevel returns node id's top level for the standard TZ hierarchy with
// per-level survival probability p. Deterministic in (seed, id, k, p up to
// the coin comparisons).
func TopLevel(seed uint64, id, k int, p float64) int {
	return TopLevelFromRNG(NodeRNG(seed, SaltLevels, id), k, p)
}

// SampleLevels draws top levels for all n nodes. levels[u] ∈ [0, k-1].
func SampleLevels(n, k int, p float64, seed uint64) []int {
	levels := make([]int, n)
	for u := 0; u < n; u++ {
		levels[u] = TopLevel(seed, u, k, p)
	}
	return levels
}

// HierarchyProb returns the per-level survival probability n^{-1/k} used
// by the standard construction (§3.1).
func HierarchyProb(n, k int) float64 {
	if k <= 1 {
		return 0
	}
	return math.Pow(float64(n), -1.0/float64(k))
}

// NetHierarchyProb returns the per-level survival probability
// ((10/ε)·ln n)^{-1/k} used when running Thorup–Zwick over an ε-density
// net (Lemma 4.5 replaces n^{-1/k} with this, because the ground set is
// the net of expected size ≤ (10/ε)·ln n).
func NetHierarchyProb(n int, eps float64, k int) float64 {
	if k <= 1 {
		return 0
	}
	size := 10 / eps * math.Log(float64(n))
	if size < 2 {
		size = 2
	}
	return math.Pow(size, -1.0/float64(k))
}

// NetProb returns the density-net sampling probability min(1, 5·ln(n)/(εn))
// from Lemma 4.2.
func NetProb(n int, eps float64) float64 {
	p := 5 * math.Log(float64(n)) / (eps * float64(n))
	if p > 1 {
		p = 1
	}
	return p
}

// InDensityNet reports whether node id joins the ε-density net (Lemma 4.2:
// independent coin with probability NetProb). salt distinguishes multiple
// nets built from the same master seed (the gracefully degrading sketch
// builds one net per ε).
func InDensityNet(seed, salt uint64, id, n int, eps float64) bool {
	return NodeRNG(seed, salt, id).Float64() < NetProb(n, eps)
}

// DensityNet returns the sorted member list of the ε-density net.
func DensityNet(n int, eps float64, seed, salt uint64) []int {
	var net []int
	for u := 0; u < n; u++ {
		if InDensityNet(seed, salt, u, n, eps) {
			net = append(net, u)
		}
	}
	return net
}

// Pivot is p_i(u) together with d(u, p_i(u)) = d(u, A_i). A level whose
// A_i is empty (possible for aggressive sampling) has Node = -1, Dist = Inf.
type Pivot struct {
	Node int
	Dist graph.Dist
}

// BunchItem is one bunch member: the member's node ID, its distance from
// the label owner, and its top level in the hierarchy.
type BunchItem struct {
	Node  int
	Dist  graph.Dist
	Level int
}

// TZLabel is the Thorup–Zwick label L(u) of §3.1: the pivots p_0..p_{k-1}
// with their distances, and the bunch B(u) with distances.
//
// Bunch items are kept sorted by ascending node ID with unique keys —
// the same representation invariant LandmarkLabel.Entries carries. The
// sorted order is what makes DistTo a branch-predictable binary search
// (the probe QueryTZ issues per level) and QueryTZBest's bunch
// intersection a zero-allocation two-pointer merge. Every producer — the
// builders, the wire decoder, and the label-shipping pipeline —
// maintains the invariant; Validate checks it.
type TZLabel struct {
	Owner  int
	K      int
	Pivots []Pivot     // length K; Pivots[0] = {Owner, 0} when A_0 = V
	Bunch  []BunchItem // sorted ascending by Node, unique keys

	// probe is a derived open-addressing index over Bunch (slot → node,
	// bunch index), built once by the wire decoder so that decode-once
	// serving answers DistTo in one or two contiguous loads instead of a
	// binary search's dependent cache misses. It is pure acceleration
	// state: nil is always valid (DistTo falls back to the sorted-slice
	// search), Set and Canonicalize drop it, and it never travels on the
	// wire. len(probe) is a power of two ≥ 2·len(Bunch).
	probe []probeSlot
}

// probeSlot is one open-addressing slot: the bunch member's node ID and
// its index in the sorted Bunch slice. Node -1 marks an empty slot. The
// compact 8-byte slot keeps a whole table on a few cache lines — the
// table working set, not the per-probe instruction count, is what bounds
// the query throughput of large decoded sets.
type probeSlot struct {
	Node int32
	Idx  int32
}

// buildProbe constructs the DistTo acceleration index. Labels whose node
// IDs do not fit the compact slot layout (negative or ≥ 2³¹, possible
// only in adversarial wire input) keep probe nil and use the fallback.
// An empty bunch gets a minimal all-empty table, so indexed labels
// answer every probe from the table alone.
func (l *TZLabel) buildProbe() {
	l.probe = nil
	size := 4
	for size < 2*len(l.Bunch) {
		size *= 2
	}
	for _, it := range l.Bunch {
		if it.Node < 0 || it.Node > math.MaxInt32 {
			return
		}
	}
	t := make([]probeSlot, size)
	for i := range t {
		t[i].Node = -1
	}
	mask := uint32(size - 1)
	for i, it := range l.Bunch {
		s := (uint32(it.Node) * 0x9E3779B1) & mask
		for t[s].Node != -1 {
			s = (s + 1) & mask
		}
		t[s] = probeSlot{Node: int32(it.Node), Idx: int32(i)}
	}
	l.probe = t
}

// NewTZLabel allocates an empty label for owner with k levels.
func NewTZLabel(owner, k int) *TZLabel {
	l := &TZLabel{Owner: owner, K: k, Pivots: make([]Pivot, k)}
	for i := range l.Pivots {
		l.Pivots[i] = Pivot{Node: -1, Dist: graph.Inf}
	}
	return l
}

// Len returns the number of bunch members stored in the label.
func (l *TZLabel) Len() int { return len(l.Bunch) }

// SizeWords returns the label size in O(log n)-bit words: two words per
// pivot (ID, distance) and three per bunch entry (ID, distance, level).
// This is the quantity bounded by Lemma 3.1 / Theorem 3.8.
func (l *TZLabel) SizeWords() int {
	return 2*len(l.Pivots) + 3*len(l.Bunch)
}

// Get returns the bunch item for node w, or (zero, false), by binary
// search over the sorted bunch.
//
//sketchlint:hotpath
func (l *TZLabel) Get(w int) (BunchItem, bool) {
	lo, hi := 0, len(l.Bunch)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if l.Bunch[mid].Node < w {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(l.Bunch) && l.Bunch[lo].Node == w {
		return l.Bunch[lo], true
	}
	return BunchItem{}, false
}

// Set inserts or replaces the bunch item for node w, preserving the
// sorted order. Appending in ascending ID order — the natural order for
// the builders and the shipping pipeline, which emit sorted labels — is
// O(1) amortized.
func (l *TZLabel) Set(w int, d graph.Dist, level int) {
	l.probe = nil // derived index goes stale on any mutation
	if n := len(l.Bunch); n == 0 || w > l.Bunch[n-1].Node {
		l.Bunch = append(l.Bunch, BunchItem{Node: w, Dist: d, Level: level})
		return
	}
	i := sort.Search(len(l.Bunch), func(i int) bool { return l.Bunch[i].Node >= w })
	if i < len(l.Bunch) && l.Bunch[i].Node == w {
		l.Bunch[i] = BunchItem{Node: w, Dist: d, Level: level}
		return
	}
	l.Bunch = append(l.Bunch, BunchItem{})
	copy(l.Bunch[i+1:], l.Bunch[i:])
	l.Bunch[i] = BunchItem{Node: w, Dist: d, Level: level}
}

// SetBunch replaces the whole bunch with items, canonicalizing them
// (sort by ascending node ID, duplicate IDs collapse to the smallest
// distance) and dropping the derived probe index. It is the blessed
// bulk producer: builders accumulate items in scratch storage in
// whatever order the phases emit them and install the canonical bunch
// in one call, instead of paying a sorted insert per item or mutating
// Bunch in place across functions. The items slice is reused as the
// label's storage; the caller must not touch it afterwards.
func (l *TZLabel) SetBunch(items []BunchItem) {
	l.probe = nil
	l.Bunch = CanonicalizeBunch(items)
}

// distToLinearCut is the bunch size below which DistTo scans linearly:
// a short forward scan over contiguous items pipelines better than a
// binary search's serialized dependent loads.
const distToLinearCut = 24

// DistTo returns the bunch distance to node w, or (Inf, false). This is
// the probe on QueryTZ's hot path: decoded labels answer from the
// open-addressing index in one or two contiguous loads; labels without
// the index (under construction, or adversarial node IDs) scan the
// sorted bunch — linearly while small, by binary search beyond
// distToLinearCut. The fast path is kept small enough to inline.
//
//sketchlint:hotpath
func (l *TZLabel) DistTo(w int) (graph.Dist, bool) {
	if w == l.Owner {
		return 0, true
	}
	if t := l.probe; t != nil {
		if uint(w) > math.MaxInt32 {
			return graph.Inf, false // indexed labels hold only int32-range IDs
		}
		mask := uint32(len(t) - 1)
		for s := (uint32(w) * 0x9E3779B1) & mask; ; s = (s + 1) & mask {
			n := t[s].Node
			if n == int32(w) {
				return l.Bunch[t[s].Idx].Dist, true
			}
			if n == -1 {
				return graph.Inf, false
			}
		}
	}
	return l.distToScan(w)
}

// distToScan is DistTo's path over the canonical sorted slice, for
// labels without the probe index (builders mid-construction, adversarial
// node IDs).
//
//sketchlint:hotpath
func (l *TZLabel) distToScan(w int) (graph.Dist, bool) {
	b := l.Bunch
	if len(b) <= distToLinearCut {
		for i := range b {
			if b[i].Node >= w {
				if b[i].Node == w {
					return b[i].Dist, true
				}
				break
			}
		}
		return graph.Inf, false
	}
	lo, hi := 0, len(b)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b[mid].Node < w {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(b) && b[lo].Node == w {
		return b[lo].Dist, true
	}
	return graph.Inf, false
}

// Canonicalize restores the representation invariant after items were
// appended out of order: the bunch is sorted by node ID and duplicate IDs
// collapse to the smallest distance. Builders that harvest phase results
// in arbitrary order append freely and canonicalize once, rather than
// paying a sorted insert per item.
func (l *TZLabel) Canonicalize() {
	l.probe = nil // derived index goes stale on any mutation
	l.Bunch = CanonicalizeBunch(l.Bunch)
}

// CanonicalizeBunch sorts items by node ID and collapses duplicate IDs to
// the smallest distance (keeping that item's level), returning the
// canonical slice (reusing the input's storage).
func CanonicalizeBunch(items []BunchItem) []BunchItem {
	sort.Slice(items, func(i, j int) bool { return items[i].Node < items[j].Node })
	out := items[:0]
	for _, it := range items {
		if n := len(out); n > 0 && out[n-1].Node == it.Node {
			if it.Dist < out[n-1].Dist {
				out[n-1].Dist = it.Dist
				out[n-1].Level = it.Level
			}
			continue
		}
		out = append(out, it)
	}
	return out
}

// BunchNodes returns the bunch member IDs in ascending order. The slice
// is freshly allocated but never re-sorted — the sorted representation
// makes it a straight copy of the item keys. Hot paths iterate Bunch
// directly instead.
func (l *TZLabel) BunchNodes() []int {
	ids := make([]int, len(l.Bunch))
	for i, it := range l.Bunch {
		ids[i] = it.Node
	}
	return ids
}

// Validate checks structural invariants of a label (used by tests),
// including the sorted-unique bunch representation invariant.
func (l *TZLabel) Validate() error {
	if len(l.Pivots) != l.K {
		return fmt.Errorf("sketch: %d pivots for k=%d", len(l.Pivots), l.K)
	}
	prev := graph.Dist(0)
	for i, p := range l.Pivots {
		if (p.Node < 0) != (p.Dist == graph.Inf) {
			return fmt.Errorf("sketch: pivot %d inconsistent: %+v", i, p)
		}
		if p.Dist < prev {
			return fmt.Errorf("sketch: pivot distances not monotone at level %d", i)
		}
		prev = p.Dist
	}
	for i, it := range l.Bunch {
		if i > 0 && it.Node <= l.Bunch[i-1].Node {
			return fmt.Errorf("sketch: bunch not strictly ascending at index %d (%d after %d)",
				i, it.Node, l.Bunch[i-1].Node)
		}
		if it.Level < 0 || it.Level >= l.K {
			return fmt.Errorf("sketch: bunch node %d has level %d outside [0,%d)", it.Node, it.Level, l.K)
		}
		if it.Dist < 0 || it.Dist == graph.Inf {
			return fmt.Errorf("sketch: bunch node %d has bad distance %d", it.Node, it.Dist)
		}
		// Bunch membership requires d(u,w) < d(u, A_{level+1}).
		if it.Level+1 < l.K && it.Dist >= l.Pivots[it.Level+1].Dist {
			return fmt.Errorf("sketch: bunch node %d at dist %d not < d(u,A_%d)=%d",
				it.Node, it.Dist, it.Level+1, l.Pivots[it.Level+1].Dist)
		}
	}
	return nil
}

// QueryTZ implements the distance estimation of Lemma 3.2: walk the levels
// upward and return the first pivot-through estimate whose pivot lies in
// the other label's bunch. The returned estimate d' satisfies
// d(u,v) ≤ d' ≤ (2k-1)·d(u,v).
//
// Membership is checked against the whole bunch B(v) rather than the
// per-level B_i(v); this is the original Thorup–Zwick formulation, is
// never worse, and keeps the same stretch proof (non-membership in B(v)
// implies non-membership in B_i(v), which is all the induction uses).
//
//sketchlint:hotpath
func QueryTZ(a, b *TZLabel) graph.Dist {
	return queryTZBounded(a, b, graph.Inf)
}

// queryTZBounded is QueryTZ's level walk with a sound early exit for
// callers that only consume estimates below bound (QueryGraceful's
// running minimum): any hit at or above level i returns p.Dist + d ≥
// p.Dist, and pivot distances are monotone nondecreasing in the level
// (a construction invariant, checked by Validate), so once BOTH sides'
// level-i pivot distances reach bound every possible future first hit
// is ≥ bound and the walk returns Inf — which such a caller treats
// exactly as it would have treated the real (discarded) estimate. The
// exit is taken only for finite bounds: with bound = Inf this is plain
// QueryTZ, byte-for-byte — even on adversarial wire-legal labels whose
// pivot distances are NOT monotone (the decoder does not enforce the
// invariant), an Inf-distance pivot level never cuts the walk short of
// a later finite hit.
//
//sketchlint:hotpath
func queryTZBounded(a, b *TZLabel, bound graph.Dist) graph.Dist {
	if a.Owner == b.Owner {
		return 0
	}
	ta, tb := a.probe, b.probe
	if ta == nil || tb == nil {
		return queryTZScan(a, b, bound)
	}
	k := a.K
	if b.K < k {
		k = b.K
	}
	// The walk open-codes the probe-table lookup of DistTo: the level
	// loop plus probe is the whole serving hot path of the TZ, CDG and
	// graceful kinds, and the call overhead of a non-inlinable DistTo is
	// measurable at this grain. A pivot node above the int32 range cannot
	// be in an indexed bunch, so it is a definite miss.
	//
	// The pivot chain reuses the same node across consecutive levels
	// (p_i(u) only changes when level i contributes a better candidate),
	// so the walk skips a pivot equal to the side's previous probe: a
	// repeated node carries the same pivot distance and the same
	// membership answer, so results are unchanged.
	maskA, maskB := uint32(len(ta)-1), uint32(len(tb)-1)
	lastA, lastB := -1, -1
	for i := 0; i < k; i++ {
		pa, pb := a.Pivots[i], b.Pivots[i]
		if bound != graph.Inf && pa.Dist >= bound && pb.Dist >= bound {
			return graph.Inf
		}
		if w := pa.Node; w >= 0 && w != lastA {
			lastA = w
			if w == b.Owner {
				return graph.AddDist(pa.Dist, 0)
			}
			if uint(w) <= math.MaxInt32 {
				for s := (uint32(w) * 0x9E3779B1) & maskB; ; s = (s + 1) & maskB {
					n := tb[s].Node
					if n == int32(w) {
						return graph.AddDist(pa.Dist, b.Bunch[tb[s].Idx].Dist)
					}
					if n == -1 {
						break
					}
				}
			}
		}
		if w := pb.Node; w >= 0 && w != lastB {
			lastB = w
			if w == a.Owner {
				return graph.AddDist(pb.Dist, 0)
			}
			if uint(w) <= math.MaxInt32 {
				for s := (uint32(w) * 0x9E3779B1) & maskA; ; s = (s + 1) & maskA {
					n := ta[s].Node
					if n == int32(w) {
						return graph.AddDist(pb.Dist, a.Bunch[ta[s].Idx].Dist)
					}
					if n == -1 {
						break
					}
				}
			}
		}
	}
	return graph.Inf
}

// queryTZScan is the queryTZBounded walk for label pairs where at least
// one side lacks the probe index (labels still under construction, or
// adversarial node IDs): identical level walk, probes via DistTo.
//
//sketchlint:hotpath
func queryTZScan(a, b *TZLabel, bound graph.Dist) graph.Dist {
	k := a.K
	if b.K < k {
		k = b.K
	}
	lastA, lastB := -1, -1
	for i := 0; i < k; i++ {
		pa, pb := a.Pivots[i], b.Pivots[i]
		if bound != graph.Inf && pa.Dist >= bound && pb.Dist >= bound {
			return graph.Inf
		}
		if pa.Node >= 0 && pa.Node != lastA {
			lastA = pa.Node
			if d, ok := b.DistTo(pa.Node); ok {
				return graph.AddDist(pa.Dist, d)
			}
		}
		if pb.Node >= 0 && pb.Node != lastB {
			lastB = pb.Node
			if d, ok := a.DistTo(pb.Node); ok {
				return graph.AddDist(pb.Dist, d)
			}
		}
	}
	return graph.Inf
}

// QueryTZBest returns the best (smallest) pivot-through estimate over all
// levels and shared bunch members, rather than stopping at the first
// usable level. Always ≤ QueryTZ; used by the "best effort" query mode.
//
//sketchlint:hotpath
func QueryTZBest(a, b *TZLabel) graph.Dist {
	if a.Owner == b.Owner {
		return 0
	}
	best := graph.Inf
	best = considerPivots(a, b, best)
	best = considerPivots(b, a, best)
	// Any node in both bunches is a valid relay: a two-pointer merge over
	// the sorted bunches finds every shared member in O(|a|+|b|).
	ab, bb := a.Bunch, b.Bunch
	i, j := 0, 0
	for i < len(ab) && j < len(bb) {
		switch {
		case ab[i].Node < bb[j].Node:
			i++
		case ab[i].Node > bb[j].Node:
			j++
		default:
			if est := graph.AddDist(ab[i].Dist, bb[j].Dist); est < best {
				best = est
			}
			i++
			j++
		}
	}
	return best
}

// considerPivots folds every pivot-through estimate of x's chain probed
// against y's bunch into the running minimum. A plain function rather
// than a closure in QueryTZBest: the hot-path discipline forbids the
// closure allocation, and the explicit accumulator keeps it trivially
// inlinable.
//
//sketchlint:hotpath
func considerPivots(x, y *TZLabel, best graph.Dist) graph.Dist {
	for i := 0; i < len(x.Pivots); i++ {
		p := x.Pivots[i]
		if p.Node < 0 {
			continue
		}
		if d, ok := y.DistTo(p.Node); ok {
			if est := graph.AddDist(p.Dist, d); est < best {
				best = est
			}
		}
	}
	return best
}
