// Package sketch defines the distance-sketch (label) data types shared by
// the centralized reference constructions (internal/tz) and the distributed
// CONGEST constructions (internal/core), together with the query
// algorithms that turn two labels into a distance estimate.
//
// Terminology follows the paper:
//
//   - A hierarchy A_0 ⊇ A_1 ⊇ ... ⊇ A_{k-1}, A_k = ∅ is sampled by
//     independent per-node coins (each node of A_{i-1} survives to A_i
//     with probability p).
//   - topLevel(u) is the largest i with u ∈ A_i.
//   - p_i(u) is the node of A_i nearest to u (the "pivot"), with ties
//     broken toward the smaller node ID.
//   - B_i(u) = {w ∈ A_i : d(u,w) < d(u, A_{i+1})} and the bunch
//     B(u) = ∪_i B_i(u). Because w ∈ A_{i+1} has d(u,w) ≥ d(u,A_{i+1}),
//     each bunch member w belongs exactly to B_{topLevel(w)}(u); the
//     union is disjoint.
//
// The label L(u) stores the pivots (with distances) and the bunch (with
// distances and top levels), which is exactly the information the paper's
// query procedure (Lemma 3.2) needs.
package sketch

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"distsketch/internal/graph"
)

// Salts separate the independent coin streams used by the different
// constructions so that, e.g., hierarchy levels and density-net membership
// are independent even under a shared master seed.
const (
	SaltLevels uint64 = 0xA11CE // Thorup–Zwick hierarchy coins (§3.1)
	SaltNet    uint64 = 0xBEE5  // ε-density net membership coins (Lemma 4.2)
	SaltNetTZ  uint64 = 0xCAB1E // hierarchy coins on the net (Lemma 4.5)
)

// NodeRNG returns the private random stream of a node for one construction
// (identified by salt). Both the distributed nodes and the centralized
// reference samplers derive coins from this same function, which is what
// makes the distributed-vs-centralized equivalence check (E12) exact.
func NodeRNG(seed, salt uint64, id int) *rand.Rand {
	return rand.New(rand.NewPCG(seed^salt, uint64(id)*0x9e3779b97f4a7c15+salt+1))
}

// TopLevelFromRNG draws a node's top level: the node is in A_0 always and
// survives from A_i to A_{i+1} with probability p, for at most k-1
// promotions (A_k = ∅ by definition).
func TopLevelFromRNG(r *rand.Rand, k int, p float64) int {
	level := 0
	for level < k-1 && r.Float64() < p {
		level++
	}
	return level
}

// TopLevel returns node id's top level for the standard TZ hierarchy with
// per-level survival probability p. Deterministic in (seed, id, k, p up to
// the coin comparisons).
func TopLevel(seed uint64, id, k int, p float64) int {
	return TopLevelFromRNG(NodeRNG(seed, SaltLevels, id), k, p)
}

// SampleLevels draws top levels for all n nodes. levels[u] ∈ [0, k-1].
func SampleLevels(n, k int, p float64, seed uint64) []int {
	levels := make([]int, n)
	for u := 0; u < n; u++ {
		levels[u] = TopLevel(seed, u, k, p)
	}
	return levels
}

// HierarchyProb returns the per-level survival probability n^{-1/k} used
// by the standard construction (§3.1).
func HierarchyProb(n, k int) float64 {
	if k <= 1 {
		return 0
	}
	return math.Pow(float64(n), -1.0/float64(k))
}

// NetHierarchyProb returns the per-level survival probability
// ((10/ε)·ln n)^{-1/k} used when running Thorup–Zwick over an ε-density
// net (Lemma 4.5 replaces n^{-1/k} with this, because the ground set is
// the net of expected size ≤ (10/ε)·ln n).
func NetHierarchyProb(n int, eps float64, k int) float64 {
	if k <= 1 {
		return 0
	}
	size := 10 / eps * math.Log(float64(n))
	if size < 2 {
		size = 2
	}
	return math.Pow(size, -1.0/float64(k))
}

// NetProb returns the density-net sampling probability min(1, 5·ln(n)/(εn))
// from Lemma 4.2.
func NetProb(n int, eps float64) float64 {
	p := 5 * math.Log(float64(n)) / (eps * float64(n))
	if p > 1 {
		p = 1
	}
	return p
}

// InDensityNet reports whether node id joins the ε-density net (Lemma 4.2:
// independent coin with probability NetProb). salt distinguishes multiple
// nets built from the same master seed (the gracefully degrading sketch
// builds one net per ε).
func InDensityNet(seed, salt uint64, id, n int, eps float64) bool {
	return NodeRNG(seed, salt, id).Float64() < NetProb(n, eps)
}

// DensityNet returns the sorted member list of the ε-density net.
func DensityNet(n int, eps float64, seed, salt uint64) []int {
	var net []int
	for u := 0; u < n; u++ {
		if InDensityNet(seed, salt, u, n, eps) {
			net = append(net, u)
		}
	}
	return net
}

// Pivot is p_i(u) together with d(u, p_i(u)) = d(u, A_i). A level whose
// A_i is empty (possible for aggressive sampling) has Node = -1, Dist = Inf.
type Pivot struct {
	Node int
	Dist graph.Dist
}

// BunchEntry is one bunch member: its distance from the label owner and
// its top level in the hierarchy.
type BunchEntry struct {
	Dist  graph.Dist
	Level int
}

// TZLabel is the Thorup–Zwick label L(u) of §3.1: the pivots p_0..p_{k-1}
// with their distances, and the bunch B(u) with distances.
type TZLabel struct {
	Owner  int
	K      int
	Pivots []Pivot            // length K; Pivots[0] = {Owner, 0} when A_0 = V
	Bunch  map[int]BunchEntry // node -> entry
}

// NewTZLabel allocates an empty label for owner with k levels.
func NewTZLabel(owner, k int) *TZLabel {
	l := &TZLabel{Owner: owner, K: k, Pivots: make([]Pivot, k), Bunch: make(map[int]BunchEntry)}
	for i := range l.Pivots {
		l.Pivots[i] = Pivot{Node: -1, Dist: graph.Inf}
	}
	return l
}

// SizeWords returns the label size in O(log n)-bit words: two words per
// pivot (ID, distance) and three per bunch entry (ID, distance, level).
// This is the quantity bounded by Lemma 3.1 / Theorem 3.8.
func (l *TZLabel) SizeWords() int {
	return 2*len(l.Pivots) + 3*len(l.Bunch)
}

// DistTo returns the bunch distance to node w, or (Inf, false).
func (l *TZLabel) DistTo(w int) (graph.Dist, bool) {
	if w == l.Owner {
		return 0, true
	}
	if e, ok := l.Bunch[w]; ok {
		return e.Dist, true
	}
	return graph.Inf, false
}

// BunchNodes returns the sorted bunch member IDs (for deterministic
// iteration in tests and serialization).
func (l *TZLabel) BunchNodes() []int {
	ids := make([]int, 0, len(l.Bunch))
	for w := range l.Bunch {
		ids = append(ids, w)
	}
	sort.Ints(ids)
	return ids
}

// Validate checks structural invariants of a label (used by tests).
func (l *TZLabel) Validate() error {
	if len(l.Pivots) != l.K {
		return fmt.Errorf("sketch: %d pivots for k=%d", len(l.Pivots), l.K)
	}
	prev := graph.Dist(0)
	for i, p := range l.Pivots {
		if (p.Node < 0) != (p.Dist == graph.Inf) {
			return fmt.Errorf("sketch: pivot %d inconsistent: %+v", i, p)
		}
		if p.Dist < prev {
			return fmt.Errorf("sketch: pivot distances not monotone at level %d", i)
		}
		prev = p.Dist
	}
	for w, e := range l.Bunch {
		if e.Level < 0 || e.Level >= l.K {
			return fmt.Errorf("sketch: bunch node %d has level %d outside [0,%d)", w, e.Level, l.K)
		}
		if e.Dist < 0 || e.Dist == graph.Inf {
			return fmt.Errorf("sketch: bunch node %d has bad distance %d", w, e.Dist)
		}
		// Bunch membership requires d(u,w) < d(u, A_{level+1}).
		if e.Level+1 < l.K && e.Dist >= l.Pivots[e.Level+1].Dist {
			return fmt.Errorf("sketch: bunch node %d at dist %d not < d(u,A_%d)=%d",
				w, e.Dist, e.Level+1, l.Pivots[e.Level+1].Dist)
		}
	}
	return nil
}

// QueryTZ implements the distance estimation of Lemma 3.2: walk the levels
// upward and return the first pivot-through estimate whose pivot lies in
// the other label's bunch. The returned estimate d' satisfies
// d(u,v) ≤ d' ≤ (2k-1)·d(u,v).
//
// Membership is checked against the whole bunch B(v) rather than the
// per-level B_i(v); this is the original Thorup–Zwick formulation, is
// never worse, and keeps the same stretch proof (non-membership in B(v)
// implies non-membership in B_i(v), which is all the induction uses).
func QueryTZ(a, b *TZLabel) graph.Dist {
	if a.Owner == b.Owner {
		return 0
	}
	k := a.K
	if b.K < k {
		k = b.K
	}
	for i := 0; i < k; i++ {
		if p := a.Pivots[i]; p.Node >= 0 {
			if d, ok := b.DistTo(p.Node); ok {
				return graph.AddDist(p.Dist, d)
			}
		}
		if p := b.Pivots[i]; p.Node >= 0 {
			if d, ok := a.DistTo(p.Node); ok {
				return graph.AddDist(p.Dist, d)
			}
		}
	}
	return graph.Inf
}

// QueryTZBest returns the best (smallest) pivot-through estimate over all
// levels and shared bunch members, rather than stopping at the first
// usable level. Always ≤ QueryTZ; used by the "best effort" query mode.
func QueryTZBest(a, b *TZLabel) graph.Dist {
	if a.Owner == b.Owner {
		return 0
	}
	best := graph.Inf
	consider := func(x, y *TZLabel) {
		for i := 0; i < len(x.Pivots); i++ {
			p := x.Pivots[i]
			if p.Node < 0 {
				continue
			}
			if d, ok := y.DistTo(p.Node); ok {
				if est := graph.AddDist(p.Dist, d); est < best {
					best = est
				}
			}
		}
	}
	consider(a, b)
	consider(b, a)
	// Any node in both bunches is a valid relay.
	small, large := a, b
	if len(b.Bunch) < len(a.Bunch) {
		small, large = b, a
	}
	for w, e := range small.Bunch {
		if d, ok := large.DistTo(w); ok {
			if est := graph.AddDist(e.Dist, d); est < best {
				best = est
			}
		}
	}
	return best
}
