package sketch

import (
	"bytes"
	"testing"

	"distsketch/internal/graph"
)

// Fuzz targets: the Unmarshal functions must never panic on arbitrary
// bytes — they face data received from untrusted peers (Section 2.1's
// "ask for its sketch").

func FuzzUnmarshalTZ(f *testing.F) {
	l := NewTZLabel(3, 2)
	l.Pivots[0] = Pivot{Node: 3, Dist: 0}
	l.Pivots[1] = Pivot{Node: 9, Dist: 7}
	l.Set(9, 7, 1)
	f.Add(MarshalTZ(l))
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{1, 0, 0, 0})
	// Unsorted and duplicated bunch node ids: legal varint streams our
	// encoder never produces; the decoder must canonicalize them.
	f.Add([]byte{1, 0, 2, 4, 0, // owner 0, k=1, pivot (2, 0)
		6,        // bunch count 3
		18, 8, 0, // node 9, dist 4, level 0
		6, 12, 0, // node 3, dist 6, level 0
		18, 4, 0, // node 9, dist 2, level 0
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		lab, err := UnmarshalTZ(data)
		if err != nil {
			return
		}
		if lab == nil {
			t.Fatal("nil label without error")
		}
		// Decoded bunches are canonical: strictly ascending unique ids.
		for i := 1; i < len(lab.Bunch); i++ {
			if lab.Bunch[i].Node <= lab.Bunch[i-1].Node {
				t.Fatalf("decoded bunch not canonical at %d: %+v", i, lab.Bunch)
			}
		}
		// And round-trip to a marshal fixed point.
		blob := MarshalTZ(lab)
		lab2, err2 := UnmarshalTZ(blob)
		if err2 != nil {
			t.Fatalf("re-unmarshal failed: %v", err2)
		}
		if !bytes.Equal(MarshalTZ(lab2), blob) {
			t.Error("canonical form is not a marshal fixed point")
		}
	})
}

func FuzzUnmarshalLandmark(f *testing.F) {
	l := NewLandmarkLabel(2)
	l.Set(5, 9)
	f.Add(MarshalLandmark(l))
	f.Add([]byte{2, 4})
	// Unsorted and duplicated net ids: legal varint streams our encoder
	// never produces. The decoder must canonicalize them (sort, dedup to
	// the smallest distance), never hand back a label whose sorted-merge
	// queries would be wrong.
	f.Add([]byte{2, 2, 6, 18, 8, 6, 12, 18, 4}) // owner 1: (9,4),(3,6),(9,2)
	f.Add([]byte{2, 0, 4, 14, 2, 14, 6})        // owner 0: (7,1),(7,3)
	f.Add([]byte{2, 0, 4, 14, 1, 14, 6})        // owner 0: (7,Inf),(7,3)
	f.Fuzz(func(t *testing.T, data []byte) {
		lab, err := UnmarshalLandmark(data)
		if err != nil {
			return
		}
		if lab == nil {
			t.Fatal("nil label without error")
		}
		// Decoded labels are canonical: strictly ascending unique ids.
		if verr := lab.Validate(); verr != nil {
			t.Fatalf("decoded label not canonical: %v", verr)
		}
		// And round-trip to a fixed point: re-marshaling the canonical
		// label and decoding again must reproduce it byte for byte.
		blob := MarshalLandmark(lab)
		lab2, err2 := UnmarshalLandmark(blob)
		if err2 != nil {
			t.Fatalf("re-unmarshal failed: %v", err2)
		}
		if !bytes.Equal(MarshalLandmark(lab2), blob) {
			t.Error("canonical form is not a marshal fixed point")
		}
	})
}

func FuzzUnmarshalGraceful(f *testing.F) {
	l := &GracefulLabel{Owner: 1}
	l.Levels = append(l.Levels, &CDGLabel{Owner: 1, Eps: 0.5, NetNode: 2, NetDist: 3})
	f.Add(MarshalGraceful(l))
	f.Add([]byte{4, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		lab, err := UnmarshalGraceful(data)
		if err == nil && lab == nil {
			t.Error("nil label without error")
		}
	})
}

// FuzzQueryTZ checks the query never panics and never returns a negative
// distance on structurally valid label pairs decoded from fuzz input.
func FuzzQueryTZ(f *testing.F) {
	a := NewTZLabel(0, 2)
	a.Pivots[0] = Pivot{Node: 0, Dist: 0}
	a.Pivots[1] = Pivot{Node: 7, Dist: 4}
	a.Set(7, 4, 1)
	f.Add(MarshalTZ(a), MarshalTZ(a))
	f.Fuzz(func(t *testing.T, da, db []byte) {
		la, errA := UnmarshalTZ(da)
		lb, errB := UnmarshalTZ(db)
		if errA != nil || errB != nil {
			return
		}
		if d := QueryTZ(la, lb); d < 0 && d != graph.Inf {
			t.Errorf("negative estimate %d", d)
		}
	})
}
