package distsketch

// Envelope format tests: golden bytes pinning both envelope versions,
// version-1 ↔ version-2 compatibility round trips, the lazy-loading
// contract of version 2 (zero up-front label decodes, byte-identical
// query results), and rejection of crafted version-2 envelopes.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"testing"

	"distsketch/internal/sketch"
)

// goldenEnvelopeSet is a hand-built two-node landmark set with fixed
// cost accounting, small enough that its envelope bytes can be pinned
// literally in the golden tests below.
func goldenEnvelopeSet() *SketchSet {
	l0 := &sketch.LandmarkLabel{Owner: 0, Entries: []sketch.Entry{{Net: 1, D: 3}}}
	l1 := &sketch.LandmarkLabel{Owner: 1, Entries: []sketch.Entry{{Net: 1, D: 0}}}
	return &SketchSet{
		kind:     KindLandmark,
		sketches: []*Sketch{{kind: KindLandmark, label: l0}, {kind: KindLandmark, label: l1}},
		cost: CostBreakdown{
			Total:        Stats{Rounds: 2, Messages: 5, Words: 7},
			DataMessages: 5,
			Phases:       []PhaseCost{{Name: "landmark", Stats: Stats{Rounds: 2, Messages: 5, Words: 7}}},
		},
		net: []int{1},
	}
}

// goldenV1 and goldenV2 are the pinned envelope bytes of
// goldenEnvelopeSet: magic, version, payload length, payload (kind tag,
// node count, cost, phases, net, sketches — version 2 with the per-node
// length+words directory ahead of the blobs), crc32.
var goldenV1 = []byte{
	0x44, 0x53, 0x4b, 0x53, 0x45, 0x54, 0x1, 0x24, 0x2, 0x2, 0x2, 0x5, 0x7, 0x5, 0x0, 0x0,
	0x0, 0x1, 0x8, 0x6c, 0x61, 0x6e, 0x64, 0x6d, 0x61, 0x72, 0x6b, 0x2, 0x5, 0x7, 0x1, 0x1,
	0x5, 0x2, 0x0, 0x2, 0x2, 0x6, 0x5, 0x2, 0x2, 0x2, 0x2, 0x0, 0xf4, 0x62, 0xd3, 0x20,
}

var goldenV2 = []byte{
	0x44, 0x53, 0x4b, 0x53, 0x45, 0x54, 0x2, 0x26, 0x2, 0x2, 0x2, 0x5, 0x7, 0x5, 0x0, 0x0,
	0x0, 0x1, 0x8, 0x6c, 0x61, 0x6e, 0x64, 0x6d, 0x61, 0x72, 0x6b, 0x2, 0x5, 0x7, 0x1, 0x1,
	0x5, 0x2, 0x5, 0x2, 0x2, 0x0, 0x2, 0x2, 0x6, 0x2, 0x2, 0x2, 0x2, 0x0, 0x98, 0xe5, 0xea, 0xd9,
}

// TestGoldenEnvelopeV1 pins the version-1 envelope byte for byte, so the
// legacy format provably cannot drift while version 2 evolves.
func TestGoldenEnvelopeV1(t *testing.T) {
	var buf bytes.Buffer
	if _, err := goldenEnvelopeSet().WriteToVersion(&buf, SetVersion1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), goldenV1) {
		t.Fatalf("v1 envelope bytes drifted:\n got %#v\nwant %#v", buf.Bytes(), goldenV1)
	}
	set, err := ReadSketchSet(bytes.NewReader(goldenV1))
	if err != nil {
		t.Fatal(err)
	}
	if set.EnvelopeVersion() != SetVersion1 || set.N() != 2 || set.Kind() != KindLandmark {
		t.Fatalf("decoded golden v1: version=%d n=%d kind=%s", set.EnvelopeVersion(), set.N(), set.Kind())
	}
	if d := set.Query(0, 1); d != 3 {
		t.Errorf("golden v1 query = %d, want 3", d)
	}
}

// TestGoldenEnvelopeV2 pins the version-2 envelope — directory layout
// included — byte for byte.
func TestGoldenEnvelopeV2(t *testing.T) {
	var buf bytes.Buffer
	if _, err := goldenEnvelopeSet().WriteToVersion(&buf, SetVersion2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), goldenV2) {
		t.Fatalf("v2 envelope bytes drifted:\n got %#v\nwant %#v", buf.Bytes(), goldenV2)
	}
	set, err := ReadSketchSet(bytes.NewReader(goldenV2))
	if err != nil {
		t.Fatal(err)
	}
	if set.EnvelopeVersion() != SetVersion2 || set.N() != 2 || set.Kind() != KindLandmark {
		t.Fatalf("decoded golden v2: version=%d n=%d kind=%s", set.EnvelopeVersion(), set.N(), set.Kind())
	}
	if got := set.DecodedSketches(); got != 0 {
		t.Errorf("v2 load decoded %d labels up front, want 0", got)
	}
	if set.SketchWords(0) != 2 || set.SketchWords(1) != 2 {
		t.Errorf("directory words = %d,%d, want 2,2", set.SketchWords(0), set.SketchWords(1))
	}
	if d := set.Query(0, 1); d != 3 {
		t.Errorf("golden v2 query = %d, want 3", d)
	}
}

// TestGoldenEnvelopeCrossVersion: reading one version and writing the
// other must reproduce the other golden file exactly — the payload
// differs only in the sketch section layout.
func TestGoldenEnvelopeCrossVersion(t *testing.T) {
	fromV1, err := ReadSketchSet(bytes.NewReader(goldenV1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := fromV1.WriteToVersion(&buf, SetVersion2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), goldenV2) {
		t.Error("v1 → read → v2 write does not reproduce the golden v2 envelope")
	}
	fromV2, err := ReadSketchSet(bytes.NewReader(goldenV2))
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if _, err := fromV2.WriteToVersion(&buf, SetVersion1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), goldenV1) {
		t.Error("v2 → read → v1 write does not reproduce the golden v1 envelope")
	}
}

// TestEnvelopeCompatRoundTrip drives the full v1 → read → v2 → write →
// read chain on real builds of every kind: cost accounting, sketch
// bytes and estimates must survive unchanged in both directions.
func TestEnvelopeCompatRoundTrip(t *testing.T) {
	g, err := NewRandomWeightedGraph(FamilyGeometric, 64, 1, 20, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range allKinds {
		t.Run(string(kind), func(t *testing.T) {
			set, err := Build(g, Options{Kind: kind, K: 2, Eps: 0.25, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			var v1 bytes.Buffer
			if _, err := set.WriteToVersion(&v1, SetVersion1); err != nil {
				t.Fatal(err)
			}
			fromV1, err := ReadSketchSet(bytes.NewReader(v1.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			var v2 bytes.Buffer
			if _, err := fromV1.WriteToVersion(&v2, SetVersion2); err != nil {
				t.Fatal(err)
			}
			fromV2, err := ReadSketchSet(bytes.NewReader(v2.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if fromV2.Cost().Total != set.Cost().Total || fromV2.N() != set.N() {
				t.Fatal("header or cost changed across the version round trip")
			}
			for u := 0; u < set.N(); u++ {
				if !bytes.Equal(fromV2.SketchBytes(u), set.SketchBytes(u)) {
					t.Fatalf("node %d: sketch bytes differ after v1→v2 round trip", u)
				}
			}
			// And back: a lazily loaded set re-emits version 1 byte-identically
			// without decoding anything.
			var v1Again bytes.Buffer
			if _, err := fromV2.WriteToVersion(&v1Again, SetVersion1); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(v1Again.Bytes(), v1.Bytes()) {
				t.Fatal("v2 → v1 write does not reproduce the original v1 envelope")
			}
		})
	}
}

// TestLazyLoadEquivalence pins the acceptance contract of envelope v2:
// loading performs zero full-label decodes up front, and every query
// against the lazily loaded set returns exactly what the eagerly loaded
// version-1 set returns.
func TestLazyLoadEquivalence(t *testing.T) {
	g, err := NewRandomWeightedGraph(FamilyGeometric, 64, 1, 20, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range allKinds {
		t.Run(string(kind), func(t *testing.T) {
			set, err := Build(g, Options{Kind: kind, K: 2, Eps: 0.25, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			var v1, v2 bytes.Buffer
			if _, err := set.WriteToVersion(&v1, SetVersion1); err != nil {
				t.Fatal(err)
			}
			if _, err := set.WriteToVersion(&v2, SetVersion2); err != nil {
				t.Fatal(err)
			}
			eager, err := ReadSketchSet(bytes.NewReader(v1.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			// The lazy load honors the DISTSKETCH_TEST_BACKING matrix: the
			// same assertions must hold for a heap-read and an mmap-opened
			// envelope.
			lazy := loadLazyForBacking(t, v2.Bytes())
			if got := lazy.DecodedSketches(); got != 0 {
				t.Fatalf("v2 load decoded %d labels up front, want 0", got)
			}
			if eager.DecodedSketches() != eager.N() {
				t.Fatalf("v1 load is not eager: %d/%d decoded", eager.DecodedSketches(), eager.N())
			}
			// Size statistics come from the directory without decoding.
			if lazy.MaxSketchWords() != eager.MaxSketchWords() || lazy.MeanSketchWords() != eager.MeanSketchWords() {
				t.Error("directory-backed size stats disagree with decoded stats")
			}
			if got := lazy.DecodedSketches(); got != 0 {
				t.Fatalf("size statistics decoded %d labels, want 0", got)
			}
			for u := 0; u < set.N(); u++ {
				for v := u; v < set.N(); v += 3 {
					if le, ee := lazy.Query(u, v), eager.Query(u, v); le != ee {
						t.Fatalf("(%d,%d): lazy %d != eager %d", u, v, le, ee)
					}
				}
			}
			if got := lazy.DecodedSketches(); got != lazy.N() {
				t.Errorf("after touching every node: %d/%d decoded", got, lazy.N())
			}
			if err := lazy.Materialize(); err != nil {
				t.Fatal(err)
			}
			if lazy.EnvelopeVersion() != SetVersion2 {
				t.Error("Materialize dropped the envelope version")
			}
		})
	}
}

// TestLazyConcurrentQueries hammers a lazily loaded set from many
// goroutines racing to first-touch the same labels — the serving
// layer's lock-free read pattern. Run under -race in CI: the atomic
// decode slots must make concurrent first touches safe, and every
// goroutine must see estimates identical to the eager set's.
func TestLazyConcurrentQueries(t *testing.T) {
	g, err := NewRandomWeightedGraph(FamilyGeometric, 64, 1, 20, 11)
	if err != nil {
		t.Fatal(err)
	}
	set, err := Build(g, Options{Kind: KindLandmark, Eps: 0.25, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var v2 bytes.Buffer
	if _, err := set.WriteTo(&v2); err != nil {
		t.Fatal(err)
	}
	lazy := loadLazyForBacking(t, v2.Bytes())
	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(seed int) {
			for i := 0; i < 2000; i++ {
				u, v := (i+seed)%set.N(), (i*31+17)%set.N()
				got, err := lazy.QueryChecked(u, v)
				if err != nil {
					errs <- err
					return
				}
				if want := set.Query(u, v); got != want {
					errs <- fmt.Errorf("(%d,%d): lazy %d != built %d", u, v, got, want)
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := lazy.DecodedSketches(); got != lazy.N() {
		t.Errorf("decoded %d/%d after full coverage", got, lazy.N())
	}
}

// reCRC recomputes a (possibly mutated) envelope's payload checksum so
// corruption tests exercise the structural validation behind it rather
// than the checksum itself.
func reCRC(t *testing.T, env []byte) []byte {
	t.Helper()
	rest := env[len(setMagic)+1:]
	plen, n := binary.Uvarint(rest)
	if n <= 0 {
		t.Fatal("bad envelope length")
	}
	payload := rest[n : n+int(plen)]
	out := bytes.Clone(env)
	binary.LittleEndian.PutUint32(out[len(out)-4:], crc32.ChecksumIEEE(payload))
	return out
}

// TestEnvelopeV2RejectsCrafted: version-2 envelopes with a valid
// checksum but inconsistent directories or blobs must fail loudly — at
// load for structural lies, at first touch for undecodable label bodies.
func TestEnvelopeV2RejectsCrafted(t *testing.T) {
	// goldenV2 payload map (absolute offsets): 8 kind tag, 9 node count,
	// 10–31 cost/phases/net, 32–35 directory (len0, words0, len1,
	// words1), 36–40 blob0, 41–45 blob1, 46–49 crc.
	base := goldenV2

	// Directory blob length lying beyond the payload.
	bad := bytes.Clone(base)
	bad[32] = 0x3f
	if _, err := ReadSketchSet(bytes.NewReader(reCRC(t, bad))); err == nil {
		t.Error("lying directory length accepted")
	}

	// Truncated directory: node count raised above the entries present,
	// so later "directory entries" are really blob bytes and the blob
	// region no longer lines up.
	bad = bytes.Clone(base)
	bad[9] = 0x4
	if _, err := ReadSketchSet(bytes.NewReader(reCRC(t, bad))); err == nil {
		t.Error("truncated directory accepted")
	}

	// Wrong owner in the second blob (offset 42 is its owner varint).
	bad = bytes.Clone(base)
	bad[42] = 0x8 // owner 4 instead of 1
	if _, err := ReadSketchSet(bytes.NewReader(reCRC(t, bad))); err == nil {
		t.Error("wrong sketch owner accepted")
	}

	// Wrong kind tag in the first blob.
	bad = bytes.Clone(base)
	bad[36] = byte(1) // TZ tag in a landmark set
	if _, err := ReadSketchSet(bytes.NewReader(reCRC(t, bad))); err == nil {
		t.Error("wrong sketch tag accepted")
	}

	// Structurally invalid blob body behind a correct tag and owner: the
	// lazy load accepts it, the first touch must surface the error
	// through the checked accessors without panicking.
	bad = bytes.Clone(base)
	bad[38] = 0x7e // first blob's entry count varint: far more than fits
	set, err := ReadSketchSet(bytes.NewReader(reCRC(t, bad)))
	if err != nil {
		t.Fatalf("structurally lazy-valid envelope rejected at load: %v", err)
	}
	if _, qerr := set.QueryChecked(0, 1); qerr == nil {
		t.Error("undecodable lazy label answered a query")
	}
	if merr := set.Materialize(); merr == nil {
		t.Error("undecodable lazy label survived Materialize")
	}

	// A lying directory word count passes the load-time scan (size stats
	// are directory-backed by design) but must be caught the moment the
	// label is actually decoded.
	bad = bytes.Clone(base)
	bad[33] = 0x7 // first node's words: 7 instead of the real 2
	set, err = ReadSketchSet(bytes.NewReader(reCRC(t, bad)))
	if err != nil {
		t.Fatalf("lying word count rejected at load: %v", err)
	}
	if got := set.SketchWords(0); got != 7 {
		t.Fatalf("pre-touch SketchWords = %d, want the directory's 7", got)
	}
	if _, qerr := set.QueryChecked(0, 1); qerr == nil {
		t.Error("label with lying directory word count answered a query")
	}
}
