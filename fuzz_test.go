package distsketch

// Fuzz targets for the public entry points that face untrusted bytes:
// ParseSketch and Estimate accept data received from arbitrary peers
// (Section 2.1's "ask for its sketch") and must never panic, whatever
// arrives. The internal codecs have their own fuzzers; these exercise
// the facade's dispatch and wrapping on top of them.

import (
	"bytes"
	"testing"
)

// fuzzSeeds returns one serialized sketch per kind from a small build.
func fuzzSeeds(f *testing.F) [][]byte {
	f.Helper()
	g, err := NewRandomWeightedGraph(FamilyGeometric, 24, 1, 9, 7)
	if err != nil {
		f.Fatal(err)
	}
	var seeds [][]byte
	for _, kind := range []Kind{KindTZ, KindLandmark, KindCDG, KindGraceful} {
		set, err := Build(g, Options{Kind: kind, K: 2, Eps: 0.25, Seed: 7})
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, set.SketchBytes(0), set.SketchBytes(23))
	}
	return seeds
}

func FuzzParseSketch(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{1, 0, 0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Add([]byte{5, 1, 2, 3})
	// Envelope headers (both versions) fed to the label parser: ParseSketch
	// must reject container bytes as cleanly as corrupt labels.
	f.Add([]byte{0x44, 0x53, 0x4b, 0x53, 0x45, 0x54, 0x1, 0x24, 0x2, 0x2})
	f.Add([]byte{0x44, 0x53, 0x4b, 0x53, 0x45, 0x54, 0x2, 0x26, 0x2, 0x2})
	f.Fuzz(func(t *testing.T, data []byte) {
		sk, err := ParseSketch(data)
		if err != nil {
			return
		}
		if sk == nil {
			t.Fatal("nil sketch without error")
		}
		if sk.Kind() == "" {
			t.Fatal("decoded sketch with empty kind")
		}
		// Accepted input must round-trip through the wire format.
		out, err := sk.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		again, err := ParseSketch(out)
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		out2, _ := again.MarshalBinary()
		if !bytes.Equal(out, out2) {
			t.Fatal("marshal/parse/marshal not a fixed point")
		}
	})
}

// FuzzReadSketchSet hammers the envelope reader with both versions'
// headers, truncated directories, and arbitrary mutations. Whatever
// arrives, it must never panic; what it accepts must materialize
// cleanly or fail with an error, and a materialized set must round-trip
// through WriteTo.
func FuzzReadSketchSet(f *testing.F) {
	g, err := NewRandomWeightedGraph(FamilyGeometric, 16, 1, 9, 7)
	if err != nil {
		f.Fatal(err)
	}
	for _, kind := range []Kind{KindTZ, KindLandmark, KindCDG, KindGraceful} {
		set, err := Build(g, Options{Kind: kind, K: 2, Eps: 0.25, Seed: 7})
		if err != nil {
			f.Fatal(err)
		}
		for _, version := range []int{SetVersion1, SetVersion2} {
			var buf bytes.Buffer
			if _, err := set.WriteToVersion(&buf, version); err != nil {
				f.Fatal(err)
			}
			env := buf.Bytes()
			f.Add(bytes.Clone(env))
			f.Add(bytes.Clone(env[:len(env)/2])) // truncated mid-payload (v2: mid-directory)
			f.Add(bytes.Clone(env[:len(env)-2])) // truncated checksum
		}
	}
	f.Add([]byte("DSKSET"))
	f.Add([]byte{0x44, 0x53, 0x4b, 0x53, 0x45, 0x54, 0x2, 0x0})
	f.Fuzz(func(t *testing.T, data []byte) {
		set, err := ReadSketchSet(bytes.NewReader(data))
		if err != nil {
			return
		}
		if set.N() == 0 || set.Kind() == "" {
			t.Fatal("accepted envelope with no sketches or kind")
		}
		if err := set.Materialize(); err != nil {
			return // lazily discovered corruption is an error, never a panic
		}
		var buf bytes.Buffer
		if _, err := set.WriteTo(&buf); err != nil {
			t.Fatalf("re-write of materialized set: %v", err)
		}
		again, err := ReadSketchSet(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read of re-written set: %v", err)
		}
		if again.N() != set.N() || again.Kind() != set.Kind() {
			t.Fatal("round trip changed the set header")
		}
	})
}

func FuzzEstimate(f *testing.F) {
	seeds := fuzzSeeds(f)
	for i := 0; i+1 < len(seeds); i += 2 {
		f.Add(seeds[i], seeds[i+1])
	}
	f.Add([]byte{1}, []byte{2})
	f.Add([]byte{}, []byte{})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		d, err := Estimate(a, b)
		if err != nil {
			return
		}
		if d < 0 && d != Inf {
			t.Fatalf("negative estimate %d", d)
		}
	})
}
