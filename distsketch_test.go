package distsketch

import (
	"fmt"
	"testing"

	"distsketch/internal/eval"
	"distsketch/internal/graph"
)

func TestBuildAllKinds(t *testing.T) {
	g, err := NewRandomWeightedGraph(FamilyGeometric, 64, 1, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	ap := graph.APSP(g)
	for _, kind := range []Kind{KindTZ, KindLandmark, KindCDG, KindGraceful} {
		res, err := Build(g, Options{Kind: kind, K: 2, Eps: 0.25, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if res.Kind() != kind || res.N() != 64 {
			t.Fatalf("%s: bad result header", kind)
		}
		if res.Rounds() <= 0 || res.Messages() <= 0 || res.Words() < res.Messages() {
			t.Errorf("%s: implausible cost rounds=%d msgs=%d words=%d",
				kind, res.Rounds(), res.Messages(), res.Words())
		}
		if res.MaxSketchWords() <= 0 || res.MeanSketchWords() > float64(res.MaxSketchWords()) {
			t.Errorf("%s: bad size accounting", kind)
		}
		// Estimates are upper bounds wherever defined. (The set satisfies
		// eval.Querier directly.)
		rep := eval.EvaluateQuerier(ap, res, eval.SamplePairs(64, 500, 1))
		if rep.Violations != 0 {
			t.Errorf("%s: %d estimates below true distance", kind, rep.Violations)
		}
	}
}

func TestSerializedEstimateMatchesDirect(t *testing.T) {
	g, err := NewRandomGraph(FamilyER, 48, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []Kind{KindTZ, KindLandmark, KindCDG, KindGraceful} {
		res, err := Build(g, Options{Kind: kind, K: 2, Eps: 0.25, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		for _, pair := range [][2]int{{0, 47}, {3, 30}, {11, 12}} {
			u, v := pair[0], pair[1]
			direct := res.Query(u, v)
			est, err := Estimate(res.SketchBytes(u), res.SketchBytes(v))
			if err != nil {
				t.Fatalf("%s: %v", kind, err)
			}
			if est != direct {
				t.Errorf("%s (%d,%d): serialized %d != direct %d", kind, u, v, est, direct)
			}
		}
	}
}

func TestEstimateRejectsMismatch(t *testing.T) {
	g, _ := NewRandomGraph(FamilyRing, 16, 1)
	a, _ := Build(g, Options{Kind: KindTZ, Seed: 1})
	b, _ := Build(g, Options{Kind: KindLandmark, Seed: 1})
	if _, err := Estimate(a.SketchBytes(0), b.SketchBytes(1)); err == nil {
		t.Error("mismatched kinds accepted")
	}
	if _, err := Estimate(nil, a.SketchBytes(0)); err == nil {
		t.Error("empty sketch accepted")
	}
}

func TestDetectionOption(t *testing.T) {
	g, _ := NewRandomGraph(FamilyGrid, 36, 2)
	omn, err := Build(g, Options{Kind: KindTZ, K: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	det, err := Build(g, Options{Kind: KindTZ, K: 2, Seed: 2, Detection: true})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 36; u++ {
		for v := 0; v < 36; v += 5 {
			if omn.Query(u, v) != det.Query(u, v) {
				t.Fatalf("(%d,%d): detection and omniscient queries differ", u, v)
			}
		}
	}
	if det.Messages() <= omn.Messages() {
		t.Errorf("detection messages %d should exceed omniscient %d", det.Messages(), omn.Messages())
	}
}

func TestBuildDefaults(t *testing.T) {
	g, _ := NewRandomGraph(FamilyTree, 32, 5)
	res, err := Build(g, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind() != KindTZ {
		t.Errorf("default kind = %s", res.Kind())
	}
}

func TestBuildRejectsUnknownKind(t *testing.T) {
	g, _ := NewRandomGraph(FamilyRing, 8, 1)
	if _, err := Build(g, Options{Kind: "bogus"}); err == nil {
		t.Error("bogus kind accepted")
	}
}

func TestNewRandomGraphErrors(t *testing.T) {
	if _, err := NewRandomGraph("nope", 10, 1); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestGraphBuilderPublicPath(t *testing.T) {
	b := NewGraphBuilder(3)
	b.AddEdge(0, 1, 2)
	b.AddEdge(1, 2, 2)
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(g, Options{Kind: KindTZ, K: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Query(0, 2); d != 4 {
		t.Errorf("Query(0,2) = %d, want 4 (k=1 is exact)", d)
	}
}

func ExampleBuild() {
	g, err := NewRandomGraph(FamilyRing, 8, 1)
	if err != nil {
		panic(err)
	}
	res, err := Build(g, Options{Kind: KindTZ, K: 1, Seed: 1})
	if err != nil {
		panic(err)
	}
	// k=1 sketches give exact distances; the ring distance 0→3 is 3.
	fmt.Println(res.Query(0, 3))
	// Output: 3
}
