package distsketch

// Node-range sharding: slicing one sketch-set envelope into per-range
// envelopes so a multi-GB set can be served by several processes, each
// holding (or mapping) only its slice. The version-2 per-node directory
// makes the slice trivial — a shard is a contiguous run of the same
// blobs, byte-identical, with the shard's global node range recorded in
// a version-3 envelope header. A shard answers queries for its own ids,
// reports ErrShardRange (a typed redirect hint) for ids owned by a
// different shard, and a pair query touching two shards is resolved by
// fetching the two wire sketches and estimating from them alone —
// exactly the paper's Section 2.1 model, so a router fans each query
// out to at most 2 shards.

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"

	"distsketch/internal/atomicfile"
)

// ErrShardRange reports a node id that exists in the full sketch set
// but is owned by a different node-range shard than the one queried.
// The checked accessors of a sharded set wrap it (with the shard's
// range in the message), so a shard server can answer "ask the right
// shard" instead of "no such node". Contrast ErrNodeRange, which means
// the id exists nowhere.
var ErrShardRange = errors.New("node id owned by a different shard")

// ShardRange is a half-open global node-id range [Lo, Hi) assigned to
// one shard.
type ShardRange struct {
	Lo, Hi int
}

func (r ShardRange) String() string { return fmt.Sprintf("[%d,%d)", r.Lo, r.Hi) }

// Contains reports whether global node u falls in the range.
func (r ShardRange) Contains(u int) bool { return u >= r.Lo && u < r.Hi }

// EvenShardRanges tiles [0, n) into shards contiguous ranges of
// near-equal size (the first n mod shards ranges are one node larger).
// It panics if shards is not in [1, n].
func EvenShardRanges(n, shards int) []ShardRange {
	if shards < 1 || shards > n {
		panic(fmt.Sprintf("distsketch: cannot split %d nodes into %d shards", n, shards))
	}
	ranges := make([]ShardRange, shards)
	lo := 0
	for i := range ranges {
		size := n / shards
		if i < n%shards {
			size++
		}
		ranges[i] = ShardRange{Lo: lo, Hi: lo + size}
		lo += size
	}
	return ranges
}

// checkShardRanges validates that ranges exactly tile [0, n): contiguous,
// ascending, no gaps or overlaps, first Lo 0 and last Hi n, every range
// non-empty.
func checkShardRanges(n int, ranges []ShardRange) error {
	if len(ranges) == 0 {
		return fmt.Errorf("distsketch: no shard ranges")
	}
	want := 0
	for i, r := range ranges {
		if r.Lo != want {
			return fmt.Errorf("distsketch: shard %d range %s does not start at %d (ranges must tile [0,%d) in order)", i, r, want, n)
		}
		if r.Hi <= r.Lo {
			return fmt.Errorf("distsketch: shard %d range %s is empty", i, r)
		}
		want = r.Hi
	}
	if want != n {
		return fmt.Errorf("distsketch: shard ranges end at %d, set has %d nodes", want, n)
	}
	return nil
}

// shardView returns a SketchSet that views the slice [r.Lo, r.Hi) of s
// without copying any label bytes: a lazy set's blob directory is
// sub-sliced, a decoded set's sketch slice is sub-sliced. The view is an
// internal serialization vehicle (it lives only for the duration of a
// WriteShard call), so it does not retain s's backing — s must stay open
// while the view is written.
func (s *SketchSet) shardView(r ShardRange) *SketchSet {
	v := &SketchSet{
		kind:       s.kind,
		envVersion: s.envVersion,
		cost:       s.cost,
		net:        s.net,
		shardLo:    r.Lo,
		shardTotal: s.TotalNodes(),
	}
	if s.lazy != nil {
		v.lazy = &lazyLabels{
			blobs:   s.lazy.blobs[r.Lo:r.Hi],
			words:   s.lazy.words[r.Lo:r.Hi],
			offsets: s.lazy.offsets[r.Lo:r.Hi],
			slots:   s.lazy.slots[r.Lo:r.Hi],
		}
	} else {
		v.sketches = s.sketches[r.Lo:r.Hi]
	}
	return v
}

// WriteShard serializes the slice [r.Lo, r.Hi) of the set as a
// version-3 shard envelope: the same label blobs, byte-identical, with
// the shard's global node range recorded so the loaded shard addresses
// its sketches by global id and redirects the rest. The set must be
// unsharded (shards are sliced from the full set, not re-sliced) and r
// must lie within [0, N()). The full cost breakdown and density net are
// carried on every shard — they are small, and the net's global ids
// stay meaningful.
func (s *SketchSet) WriteShard(w io.Writer, r ShardRange) (int64, error) {
	if s.closed {
		return 0, ErrSetClosed
	}
	if s.Sharded() {
		return 0, fmt.Errorf("distsketch: cannot re-split a node-range shard; split the full sketch set")
	}
	if r.Lo < 0 || r.Hi <= r.Lo || r.Hi > s.N() {
		return 0, fmt.Errorf("distsketch: shard range %s invalid for a %d-node set", r, s.N())
	}
	return s.shardView(r).WriteToVersion(w, SetVersion3)
}

// WriteShards slices the set into one version-3 shard envelope per
// range, writing ranges[i] to writers[i]. The ranges must exactly tile
// [0, N()) in ascending order — a query router assumes every node id is
// owned by exactly one shard.
func (s *SketchSet) WriteShards(writers []io.Writer, ranges []ShardRange) error {
	if len(writers) != len(ranges) {
		return fmt.Errorf("distsketch: %d writers for %d shard ranges", len(writers), len(ranges))
	}
	if err := checkShardRanges(s.N(), ranges); err != nil {
		return err
	}
	for i, r := range ranges {
		if _, err := s.WriteShard(writers[i], r); err != nil {
			return fmt.Errorf("distsketch: writing shard %d %s: %w", i, r, err)
		}
	}
	return nil
}

// ShardPath names shard i of total under dir using the canonical layout
// SaveShards writes and sketchserve/sketchrouter expect:
// dir/shard-<i>-of-<total>.dsk.
func ShardPath(dir string, i, total int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d-of-%d.dsk", i, total))
}

// SaveShards slices the set into len(ranges) shard envelopes and writes
// each crash-safely (temp file, fsync, atomic rename) to
// ShardPath(dir, i, len(ranges)). The ranges must exactly tile [0, N()).
// It returns the paths written. A failure part-way leaves already
// written shards complete on disk and the failing path untouched.
func SaveShards(dir string, set *SketchSet, ranges []ShardRange) ([]string, error) {
	if set == nil {
		return nil, fmt.Errorf("distsketch: cannot save a nil sketch set")
	}
	if err := checkShardRanges(set.N(), ranges); err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(ranges))
	for i, r := range ranges {
		path := ShardPath(dir, i, len(ranges))
		if err := saveShard(path, set, r); err != nil {
			return paths, fmt.Errorf("distsketch: writing shard %d %s: %w", i, r, err)
		}
		paths = append(paths, path)
	}
	return paths, nil
}

func saveShard(path string, set *SketchSet, r ShardRange) error {
	return atomicfile.WriteFile(path, func(w io.Writer) error {
		_, err := set.WriteShard(w, r)
		return err
	})
}
